"""The Gateway: PDAgent's middle-tier service bridge (§3.2, Figs. 4–6).

The gateway accepts Packed Information over HTTP, verifies and unpacks it,
validates the dispatch key, materialises a mobile agent on the attached MAS
(through the :class:`~repro.mas.adapters.MASAdapter` boundary — never a
concrete runtime), and hands the device back a **ticket** it can later
redeem for the result XML document.

Internal components mirror the paper's Fig. 6 architecture:

* :class:`AgentDispatchHandler` — separates a received PI into modules;
* :class:`XmlWriter` — "read[s] the xml document and parse[s] all the user
  requirement parameters";
* :class:`AgentCreator` — "generate[s] mobile agent classes from the
  information if the supplied unique key is valid";
* :class:`DocumentCreator` — "create[s] different files … for the Mobile
  Agent Server to collect";
* :class:`FileDirectory` — "allocate[s] a space for storing these document
  and classes, and then … signal[s] the Mobile Agent Server".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional, Union

from ..compressor import compress
from ..crypto import CryptoError, IntegrityError, KeyVault, validate_dispatch_key
from ..mas.adapters import MASAdapter
from ..mas.itinerary import Itinerary
from ..simnet.http import HttpRequest, HttpResponse, HttpServer
from ..simnet.primitives import Event
from ..telemetry.spans import Span, SpanContext
from ..xmlcodec import Element, XmlError, parse_bytes, write_bytes
from ..mas.serializer import value_to_xml
from .admission import AdmissionController, DedupTable, TokenBucket
from .config import PDAgentConfig
from .errors import (
    AuthorizationError,
    DeploymentError,
    GatewayError,
    GatewayOverloadedError,
)
from .packed_info import PIContent, unpack
from .security import GatewaySecurity
from .subscription import ServiceCatalog, SubscriptionDirectory, code_to_xml

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.topology import Network

__all__ = [
    "Gateway",
    "Ticket",
    "GATEWAY_PORT",
    "TASK_ID_HEADER",
    "AgentDispatchHandler",
    "XmlWriter",
    "AgentCreator",
    "DocumentCreator",
    "FileDirectory",
]

GATEWAY_PORT = 80
#: Request header carrying the device task id: the exactly-once fast path —
#: the gateway can dedup a retried upload before paying the unpack cost.
TASK_ID_HEADER = "x-task-id"


@dataclass
class Ticket:
    """Gateway-side record of one deployed application instance."""

    ticket_id: str
    agent_id: str
    device_id: str
    service: str
    status: str  # dispatched | completed | retracted | disposed | failed | expired
    created_at: float
    result_frame: Optional[bytes] = None
    completed: Optional[Event] = None
    children: list[str] = field(default_factory=list)  # clone tickets
    #: Device-generated idempotency key ("" for legacy dispatches).  Stored
    #: on the durable ticket so the volatile dedup index can be rebuilt
    #: after a gateway restart.
    task_id: str = ""
    #: When the result document was first successfully downloaded; starts
    #: the retention-TTL clock.
    first_downloaded_at: Optional[float] = None
    #: Telemetry span covering the ticket's pending lifetime (dispatch →
    #: finalize); ``None`` for tickets created outside a traced dispatch.
    span: Optional[Span] = None


class XmlWriter:
    """Parses the decrypted PI document into parameters (Fig. 6)."""

    def __init__(self, security: GatewaySecurity) -> None:
        self._security = security

    def extract(self, frame: bytes) -> PIContent:
        try:
            return unpack(frame, self._security)
        except IntegrityError:
            raise
        except (XmlError, ValueError, KeyError) as exc:
            raise DeploymentError(f"malformed PI: {exc}") from exc


class AgentCreator:
    """Validates the dispatch key and deploys through the MAS adapter."""

    def __init__(self, directory: SubscriptionDirectory, adapter: MASAdapter) -> None:
        self._directory = directory
        self._adapter = adapter
        self._seen_nonces: set[tuple[str, str]] = set()

    def authorize(self, content: PIContent) -> None:
        """The §3.2 check: the unique key must match the subscription.

        Also enforces nonce freshness: a captured PI replayed later (same
        code id + nonce) is rejected, closing the §3.4 threat of stolen
        packages being re-submitted.
        """
        sub = self._directory.lookup(content.code_id)
        if sub is None:
            raise AuthorizationError(f"unknown code id {content.code_id!r}")
        if sub.device_id != content.device_id:
            raise AuthorizationError(
                f"code {content.code_id!r} belongs to {sub.device_id!r}"
            )
        if not validate_dispatch_key(
            content.dispatch_key, content.code_id, content.device_id, content.nonce
        ):
            raise AuthorizationError("invalid dispatch key")
        nonce_key = (content.code_id, content.nonce)
        if nonce_key in self._seen_nonces:
            raise AuthorizationError(
                f"replayed dispatch: nonce {content.nonce!r} already used "
                f"for {content.code_id!r}"
            )
        self._seen_nonces.add(nonce_key)

    def create(
        self, content: PIContent, home: str, trace: Optional[SpanContext] = None
    ) -> Generator:
        """Process: instantiate + dispatch the agent; returns agent id."""
        if not self._adapter.supports(content.agent_class):
            raise DeploymentError(
                f"MAS does not support agent class {content.agent_class!r}"
            )
        itinerary = content.itinerary or Itinerary(origin=home)
        agent_id = yield from self._adapter.deploy(
            content.agent_class,
            owner=content.device_id,
            itinerary=itinerary,
            state={"params": content.params, "results": []},
            trace=trace,
        )
        return agent_id


class DocumentCreator:
    """Builds the result XML documents the device later downloads (§3.3)."""

    def build(self, ticket: "Ticket", result: Any, disposition: str) -> Element:
        doc = Element("result", {"ticket": ticket.ticket_id, "status": disposition})
        doc.add("agent", text=ticket.agent_id)
        doc.add("service", text=ticket.service)
        doc.append(value_to_xml(result, "data"))
        return doc


class FileDirectory:
    """Workspace allocator for per-dispatch documents and classes."""

    def __init__(self, quota_bytes: int = 64 * 1024 * 1024) -> None:
        self.quota_bytes = quota_bytes
        self._used = 0
        self._spaces: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return self._used

    def allocate(self, ticket_id: str, size: int) -> None:
        if self._used + size > self.quota_bytes:
            raise GatewayError("gateway file directory quota exceeded")
        self._spaces[ticket_id] = self._spaces.get(ticket_id, 0) + size
        self._used += size

    def release(self, ticket_id: str) -> None:
        self._used -= self._spaces.pop(ticket_id, 0)

    def tracked(self) -> list[str]:
        """Ticket ids currently holding workspace (for orphan audits)."""
        return list(self._spaces)

    def held(self, ticket_id: str) -> int:
        """Bytes currently allocated to ``ticket_id`` (0 if none)."""
        return self._spaces.get(ticket_id, 0)


class AgentDispatchHandler:
    """Separates a received PI and drives the Fig. 6 pipeline."""

    def __init__(self, gateway: "Gateway") -> None:
        self.gateway = gateway

    def handle(self, frame: bytes, trace: Optional[SpanContext] = None) -> Generator:
        """Process: full PI intake; returns ``(ticket_id, agent_id)``.

        ``trace`` is the device's exchange context (from the HTTP headers);
        when absent, the trace carried inside the PI document links the
        dispatch back to the device anyway.
        """
        gw = self.gateway
        epoch = gw.crash_epoch
        tele = gw.network.telemetry
        unpack_span = tele.start_span(
            "gateway.unpack",
            node=gw.address,
            parent=trace,
            attrs={"frame_bytes": len(frame)},
        )
        content: Optional[PIContent] = None
        try:
            # Unpack cost scales with the received frame; dispatch_cost_s
            # adds the fixed per-dispatch overhead (class loading, servlet
            # bookkeeping) the overload experiments stress.
            yield gw.node.compute(
                gw.config.unpack_cost(len(frame)) + gw.config.dispatch_cost_s
            )
            content = gw.xml_writer.extract(frame)
        finally:
            unpack_span.end(status="ok" if content is not None else "error")
        if trace is None and content.trace_id:
            # No headers (legacy client) — join the trace the PI carries.
            parent: Union[Span, SpanContext] = SpanContext(
                content.trace_id, content.trace_parent
            )
        else:
            parent = unpack_span.context
        # A crash during the unpack yield killed this servlet thread in the
        # real world: abort before minting a ticket, or the device's retry
        # (deduped against the restart-rebuilt index, which cannot know
        # about a ticket that does not exist yet) would race us into a
        # duplicate dispatch.  The 503 sends the device back through its
        # shed-retry path, which lands on the rebuilt index.
        if gw.crash_epoch != epoch:
            raise GatewayOverloadedError(
                "gateway restarted during PI intake; retry",
                retry_after=gw.config.shed_retry_after_s,
            )
        # Exactly-once admission, checked against the *authenticated* task id
        # from inside the PI, and crucially BEFORE the nonce-replay check in
        # authorize(): a byte-identical retried frame must dedup to its
        # existing ticket, not 403 as a replay.
        existing = gw._dedup_ticket(content.task_id)
        if existing is not None:
            return existing.ticket_id, existing.agent_id
        dispatch_span = tele.start_span(
            "gateway.dispatch",
            node=gw.address,
            parent=parent,
            attrs={"service": content.service, "device": content.device_id},
        )
        try:
            gw.agent_creator.authorize(content)
            ticket = gw._new_ticket(content)
            ticket.span = tele.start_span(
                "gateway.ticket",
                node=gw.address,
                parent=dispatch_span,
                attrs={"ticket": ticket.ticket_id},
            )
            gw.file_directory.allocate(
                ticket.ticket_id, len(content.code_body) + 2048
            )
            try:
                agent_id = yield from gw.agent_creator.create(
                    content, gw.address, trace=dispatch_span.context
                )
            except Exception:
                gw.file_directory.release(ticket.ticket_id)
                ticket.status = "failed"
                ticket.span.end(status="error")
                # The task produced no agent: unbind so a future retry may
                # legitimately dispatch afresh.
                gw.dedup.forget(ticket.task_id)
                raise
            ticket.agent_id = agent_id
            gw.network.tracer.count("gateway_dispatches")
            # Background: watch for the agent's completion and build the doc,
            # with a watchdog so a lost agent cannot wedge the ticket.
            gw.sim.process(
                gw._await_completion(ticket), name=f"gw-await:{ticket.ticket_id}"
            )
            gw._watch_ticket(ticket)
            dispatch_span.end(agent=agent_id)
            return ticket.ticket_id, agent_id
        finally:
            if dispatch_span.open:
                dispatch_span.end(status="error")


class Gateway:
    """A PDAgent gateway node.

    Parameters
    ----------
    network, address:
        Where the gateway lives (the node must already exist).
    adapter:
        The MAS boundary (usually a
        :class:`~repro.mas.adapters.LocalServerAdapter` over a co-located
        server).
    catalog, directory:
        Shared service catalogue and subscriber directory of the deployment.
    vault:
        Shared key vault; this gateway uses the keypair for its address.
    """

    def __init__(
        self,
        network: "Network",
        address: str,
        adapter: MASAdapter,
        catalog: ServiceCatalog,
        directory: SubscriptionDirectory,
        vault: KeyVault,
        config: Optional[PDAgentConfig] = None,
        port: int = GATEWAY_PORT,
    ) -> None:
        self.network = network
        self.node = network.node(address)
        self.adapter = adapter
        self.catalog = catalog
        self.directory = directory
        self.config = config or PDAgentConfig()
        self.security = GatewaySecurity(self.config, vault.keypair(address))
        self.xml_writer = XmlWriter(self.security)
        self.agent_creator = AgentCreator(directory, adapter)
        self.document_creator = DocumentCreator()
        self.file_directory = FileDirectory()
        self.dispatch_handler = AgentDispatchHandler(self)
        self._tickets: dict[str, Ticket] = {}
        self._ticket_counter = itertools.count(1)
        #: Incremented by crash(): in-flight intake handlers compare their
        #: entry epoch before minting a ticket, so a dispatch that straddled
        #: a crash aborts instead of racing the restarted dedup index.
        self.crash_epoch = 0
        #: Exactly-once admission index (volatile; rebuilt on restart()).
        self.dedup = DedupTable()
        #: Bounded, classed intake.  "upload" is the expensive agent-dispatch
        #: class; "download" the cheap result/agent-op class with its own
        #: pool, so a dispatch storm can never starve result collection.
        #: With admission disabled the same finite pools remain (the physical
        #: serialisation is real) but nothing sheds — the unbounded-queue
        #: baseline the overload experiment measures against.
        self.admission = AdmissionController(
            self.sim,
            metrics=network.telemetry.metrics,
            node=address,
            enabled=self.config.admission_enabled,
        )
        upload_bucket = (
            TokenBucket(
                self.sim, self.config.admission_rate, self.config.admission_burst
            )
            if self.config.admission_rate > 0
            else None
        )
        self.admission.add_class(
            "upload",
            workers=self.config.gateway_dispatch_workers,
            queue_limit=self.config.admission_queue_limit,
            bucket=upload_bucket,
            retry_after_s=self.config.shed_retry_after_s,
        )
        self.admission.add_class(
            "download",
            workers=self.config.gateway_download_workers,
            queue_limit=self.config.download_queue_limit,
            retry_after_s=self.config.shed_retry_after_s,
        )
        self.http = HttpServer(
            self.node, port=port, service_time=self.config.gateway_service_time
        )
        self.http.route("/subscribe", self._handle_subscribe)
        self.http.route("/pi", self._handle_pi)
        self.http.route("/result/", self._handle_result)
        self.http.route("/relay/", self._handle_relay)
        self.http.route("/agent", self._handle_agent_op)
        self.http.route("/status", self._handle_status)

    # ------------------------------------------------------------ plumbing
    @property
    def address(self) -> str:
        return self.node.address

    @property
    def sim(self):
        return self.network.sim

    def _new_ticket(self, content: PIContent) -> Ticket:
        ticket = Ticket(
            ticket_id=f"{self.address}/t-{next(self._ticket_counter)}",
            agent_id="",
            device_id=content.device_id,
            service=content.service,
            status="dispatched",
            created_at=self.sim.now,
            completed=Event(self.sim),
            task_id=content.task_id,
        )
        self._tickets[ticket.ticket_id] = ticket
        # Bind before the (slow) agent creation so a retry arriving while
        # the first dispatch is still materialising dedups onto it instead
        # of racing a sibling dispatch through authorize().
        if self.config.dedup_enabled:
            self.dedup.bind(content.task_id, ticket.ticket_id)
        return ticket

    def _dedup_ticket(self, task_id: str) -> Optional[Ticket]:
        """The existing ticket for ``task_id`` if this is a retried upload."""
        if not (task_id and self.config.dedup_enabled):
            return None
        ticket_id = self.dedup.lookup(task_id)
        if ticket_id is None:
            return None
        ticket = self._tickets.get(ticket_id)
        if ticket is None:  # ticket evicted out-of-band; index is stale
            self.dedup.forget(task_id)
            return None
        self.network.tracer.count("gateway.dedup_hit")
        return ticket

    def ticket(self, ticket_id: str) -> Ticket:
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise GatewayError(f"unknown ticket {ticket_id!r}") from None

    def tickets(self) -> list[Ticket]:
        """Every ticket this gateway has minted (auditing/experiments)."""
        return list(self._tickets.values())

    # ------------------------------------------------------------ crash model
    def crash(self) -> None:
        """Gateway process dies: volatile state is lost, durable state kept.

        Mirrors the PR-1 fault model: the node stops listening (clients see
        resets/refusals), the in-memory dedup index and admission queues
        vanish, but the ticket store — the servlet container's persistent
        session state — survives for :meth:`restart` to recover from.
        """
        if not self.node.crashed:
            self.node.suspend_listeners()
        self.crash_epoch += 1
        self.dedup.clear()
        self.admission.drop_queued()
        self.network.tracer.count("gateway_crashes")

    def restart(self) -> int:
        """Bring the gateway back; rebuild the dedup index from tickets.

        Exactly-once must hold *across* the crash: a device retrying a
        pre-crash task after the restart has to land on its original
        ticket, so the volatile index is reconstructed from the durable
        ticket store before any request is served.  Orphaned workspace —
        allocations whose ticket vanished mid-dispatch — is reclaimed.
        Returns the number of rebuilt dedup bindings.
        """
        rebuilt = self.dedup.rebuild(self._tickets.values())
        for ticket_id in self.file_directory.tracked():
            if ticket_id not in self._tickets:
                self.file_directory.release(ticket_id)
        if self.node.crashed:
            self.node.resume_listeners()
        self.network.tracer.count("gateway_restarts")
        return rebuilt

    def _await_completion(self, ticket: Ticket) -> Generator:
        result = yield self.adapter.wait_completion(ticket.agent_id)
        self._finalize_ticket(ticket, result, "completed")

    def _watch_ticket(self, ticket: Ticket) -> None:
        """Arm the per-ticket watchdog (no-op when disabled by config)."""
        if self.config.ticket_watchdog_s > 0:
            self.sim.process(
                self._ticket_watchdog(ticket), name=f"gw-watchdog:{ticket.ticket_id}"
            )

    def _ticket_watchdog(self, ticket: Ticket) -> Generator:
        """Finalize a ticket still "dispatched" after the deadline as "failed".

        A lost agent (crashed site, wedged MAS) must not leave the device —
        or a driving test — waiting on ``ticket.completed`` forever.  The
        failure document is marked retriable so the device knows a fresh
        deployment is worth attempting.
        """
        yield self.sim.timeout(self.config.ticket_watchdog_s)
        if ticket.status != "dispatched":
            return
        error = {
            "error": "watchdog-timeout",
            "reason": (
                f"agent {ticket.agent_id or '<unassigned>'} did not complete "
                f"within {self.config.ticket_watchdog_s:g}s"
            ),
            "retriable": True,
        }
        self._finalize_ticket(ticket, error, "failed")
        self.network.tracer.count("gateway_watchdog_failures")

    def _finalize_ticket(self, ticket: Ticket, result: Any, disposition: str) -> None:
        if ticket.status in ("completed", "retracted", "disposed", "failed", "expired"):
            return
        doc = self.document_creator.build(ticket, result, disposition)
        payload = compress(write_bytes(doc), self.config.codec)
        ticket.result_frame = self.security.protect_result(payload)
        ticket.status = disposition
        # The dispatch workspace (agent classes + scratch) is done with —
        # release it in *every* finalize path (watchdog included) and keep
        # only the result document, otherwise finalized tickets leak their
        # code-body allocation until dispose, or forever.
        self.file_directory.release(ticket.ticket_id)
        self.file_directory.allocate(ticket.ticket_id, len(ticket.result_frame))
        if ticket.completed is not None and not ticket.completed.triggered:
            ticket.completed.succeed(disposition)
        if disposition == "failed":
            # Exactly-once covers *successful* dispatch; a failed task may
            # be retried afresh, so its idempotency key is released.
            self.dedup.forget(ticket.task_id)
        self.network.tracer.count(f"gateway_results:{disposition}")
        if ticket.span is not None:
            ticket.span.end(status=disposition)

    def _expire_result(self, ticket: Ticket) -> Generator:
        """Process: reclaim a downloaded result after the retention TTL.

        Armed at the *first successful download*; when it fires, the
        document and its workspace are dropped and later downloads get the
        distinct 410 "expired" answer (vs 404 "unknown ticket").  The
        dedup binding is kept: a very late retry of the task still maps to
        this ticket instead of dispatching a fresh agent.
        """
        yield self.sim.timeout(self.config.result_ttl_s)
        if ticket.result_frame is None:
            return
        ticket.result_frame = None
        ticket.status = "expired"
        self.file_directory.release(ticket.ticket_id)
        self.network.tracer.count("gateway_results_expired")

    # ------------------------------------------------------------ HTTP handlers
    def _handle_subscribe(self, req: HttpRequest) -> HttpResponse:
        """§3.1 code download: body is ``<subscribe service device>``."""
        try:
            doc = parse_bytes(req.body)
            service = doc.require("service")
            device_id = doc.require("device")
            code = self.catalog.lookup(service)
        except Exception as exc:
            return HttpResponse(400, reason=str(exc))
        sub = self.directory.subscribe(device_id, code)
        xml = write_bytes(code_to_xml(code, sub.code_id))
        frame = self.security.protect_result(compress(xml, self.config.codec))
        self.network.tracer.count("gateway_subscriptions")
        return HttpResponse(200, body=frame, body_size=len(frame))

    def _dispatched_response(self, ticket_id: str, agent_id: str) -> HttpResponse:
        doc = Element("dispatched")
        doc.add("ticket", text=ticket_id)
        doc.add("agent", text=agent_id)
        body = write_bytes(doc)
        return HttpResponse(200, body=body, body_size=len(body))

    def _shed_response(self, exc: GatewayOverloadedError) -> HttpResponse:
        """Structured load shed: 503 + Retry-After header + XML error doc."""
        self.network.tracer.count("gateway.shed")
        retry_after = exc.retry_after
        doc = Element("overloaded", {"retry-after": f"{retry_after:g}"})
        doc.add("reason", text=str(exc))
        body = write_bytes(doc)
        return HttpResponse(
            503,
            body=body,
            body_size=len(body),
            reason=str(exc),
            headers={"Retry-After": f"{retry_after:g}"},
        )

    def _handle_pi(self, req: HttpRequest) -> Generator:
        """§3.2 service execution: body is the PI wire frame.

        Intake discipline, in order: (1) the exactly-once fast path — a
        task id already bound to a ticket answers immediately, costing no
        worker slot and no unpack; (2) admission for the "upload" class —
        shed with 503 + Retry-After when saturated; (3) the Fig. 6 dispatch
        pipeline under a held worker slot.
        """
        if not isinstance(req.body, (bytes, bytearray)):
            return HttpResponse(400, reason="PI body must be bytes")
            yield  # pragma: no cover - unreachable; keeps handler a generator
        arrived = self.sim.now
        tracer = self.network.tracer
        try:
            existing = self._dedup_ticket(req.headers.get(TASK_ID_HEADER, ""))
            if existing is not None:
                return self._dispatched_response(
                    existing.ticket_id, existing.agent_id
                )
            try:
                admission = self.admission.try_admit("upload")
            except GatewayOverloadedError as exc:
                return self._shed_response(exc)
            try:
                yield admission.request
                tracer.observe(
                    "gateway.queue_wait:upload", self.sim.now - admission.enqueued_at
                )
                # Re-check after the queue wait: an identical retry may have
                # been admitted and dispatched while this one waited.
                existing = self._dedup_ticket(req.headers.get(TASK_ID_HEADER, ""))
                if existing is not None:
                    return self._dispatched_response(
                        existing.ticket_id, existing.agent_id
                    )
                try:
                    ticket_id, agent_id = yield from self.dispatch_handler.handle(
                        bytes(req.body), trace=SpanContext.from_headers(req.headers)
                    )
                except GatewayOverloadedError as exc:
                    # Crash-epoch abort mid-intake: answer like a shed so
                    # the device retries onto the restarted gateway.
                    return self._shed_response(exc)
                except AuthorizationError as exc:
                    return HttpResponse(403, reason=str(exc))
                except (DeploymentError, IntegrityError, CryptoError) as exc:
                    # Structural damage (bad envelope/frame) and integrity
                    # failures are the client's problem, not a server fault.
                    return HttpResponse(400, reason=str(exc))
            finally:
                admission.release()
            return self._dispatched_response(ticket_id, agent_id)
        finally:
            # Per-priority latency histogram (sheds and dedup hits included:
            # what the device experienced, whatever the outcome).
            tracer.observe("gateway.latency:upload", self.sim.now - arrived)

    def _handle_result(self, req: HttpRequest) -> Generator:
        """§3.3 result collection: GET /result/<ticket-id>.

        Runs under the "download" admission class — its own worker pool, so
        result collection stays responsive through an upload storm.  The
        first successful download arms the retention TTL; a ticket whose
        document has been reclaimed answers 410 ("expired" — the task ran,
        you came back too late), distinct from 404 ("unknown ticket").
        """
        arrived = self.sim.now
        tracer = self.network.tracer
        try:
            try:
                admission = self.admission.try_admit("download")
            except GatewayOverloadedError as exc:
                return self._shed_response(exc)
            try:
                yield admission.request
                return self._result_response(req.path[len("/result/") :])
            finally:
                admission.release()
        finally:
            tracer.observe("gateway.latency:download", self.sim.now - arrived)

    def _result_response(self, ticket_id: str) -> HttpResponse:
        try:
            ticket = self.ticket(ticket_id)
        except GatewayError as exc:
            return HttpResponse(404, reason=str(exc))
        if ticket.status == "expired":
            return HttpResponse(
                410, reason=f"result for {ticket_id} expired after download"
            )
        if ticket.result_frame is None:
            return HttpResponse(204, reason="result not ready")
        if ticket.first_downloaded_at is None:
            ticket.first_downloaded_at = self.sim.now
            if self.config.result_ttl_s > 0:
                self.sim.process(
                    self._expire_result(ticket), name=f"gw-expire:{ticket.ticket_id}"
                )
        return HttpResponse(
            200, body=ticket.result_frame, body_size=len(ticket.result_frame)
        )

    def _handle_status(self, req: HttpRequest) -> HttpResponse:
        """Gateway self-monitoring: ticket counts and workspace usage.

        Administration endpoint for operators (and for tests/benchmarks
        verifying gateway-side state without reaching into internals).
        """
        by_status: dict[str, int] = {}
        for ticket in self._tickets.values():
            by_status[ticket.status] = by_status.get(ticket.status, 0) + 1
        doc = Element("gatewaystatus", {"address": self.address})
        doc.add("mas", text=getattr(self.adapter, "name", "unknown"))
        doc.add(
            "workspace",
            {
                "used": str(self.file_directory.used_bytes),
                "quota": str(self.file_directory.quota_bytes),
            },
        )
        tickets = doc.add("tickets", {"total": str(len(self._tickets))})
        for status, count in sorted(by_status.items()):
            tickets.add("bucket", {"status": status, "count": str(count)})
        body = write_bytes(doc)
        return HttpResponse(200, body=body, body_size=len(body))

    def _handle_relay(self, req: HttpRequest) -> Generator:
        """Result relay (mobility extension to §3.3).

        ``GET /relay/<origin-gateway>/<ticket-id>``: a user who moved after
        dispatching collects from *this* (now-nearest) gateway; we fetch the
        result document from the dispatching gateway over the wired network
        and hand it through.  The wired hop is cheap; the user's wireless hop
        stays short — the same asymmetry the whole design exploits.
        """
        rest = req.path[len("/relay/") :]
        origin, _, ticket_id = rest.partition("/")
        if not origin or not ticket_id:
            return HttpResponse(400, reason="need /relay/<gateway>/<ticket>")
            yield  # pragma: no cover - keeps the handler a generator
        if origin == self.address:
            resp = yield from self._handle_result(
                HttpRequest(method="GET", path=f"/result/{ticket_id}", client=req.client)
            )
            return resp
        from ..simnet.http import request as http_request
        from ..simnet.transport import TransportError

        try:
            upstream = yield from http_request(
                self.network,
                self.address,
                origin,
                "GET",
                f"/result/{ticket_id}",
                port=GATEWAY_PORT,
                purpose="gw-relay",
                raise_for_status=False,
            )
        except TransportError as exc:
            return HttpResponse(502, reason=f"origin gateway unreachable: {exc}")
        if upstream.status == 204:
            return HttpResponse(204, reason="result not ready")
        if not upstream.ok:
            # Pass the structured error through — status AND headers (e.g.
            # the origin's Retry-After), not just a collapsed reason string.
            return HttpResponse(
                upstream.status,
                reason=upstream.reason,
                headers=dict(upstream.headers),
            )
        self.network.tracer.count("gateway_relays")
        # The frame is integrity-tagged by the origin gateway; pass through.
        return HttpResponse(
            200, body=upstream.body, body_size=upstream.body_size
        )

    def _handle_agent_op(self, req: HttpRequest) -> Generator:
        """§3.6 remote agent management: ``<agentop op ticket>``."""
        try:
            doc = parse_bytes(req.body)
            op = doc.require("op")
            ticket = self.ticket(doc.require("ticket"))
        except (XmlError, KeyError, GatewayError, TypeError) as exc:
            return HttpResponse(400, reason=str(exc))
            yield  # pragma: no cover - unreachable; keeps handler a generator
        if op == "status":
            try:
                state = yield from self.adapter.status(ticket.agent_id)
            except Exception:
                state = ticket.status
            body = _op_reply(ticket, state=state)
        elif op == "retract":
            try:
                yield from self.adapter.retract(ticket.agent_id)
            except Exception as exc:
                return HttpResponse(409, reason=f"retract failed: {exc}")
            # A retracted agent yields a partial-result document.
            self._finalize_ticket(ticket, {"partial": True}, "retracted")
            body = _op_reply(ticket, state="retracted")
        elif op == "clone":
            try:
                clone_id = yield from self.adapter.clone(ticket.agent_id)
            except Exception as exc:
                return HttpResponse(409, reason=f"clone failed: {exc}")
            clone_ticket = Ticket(
                ticket_id=f"{self.address}/t-{next(self._ticket_counter)}",
                agent_id=clone_id,
                device_id=ticket.device_id,
                service=ticket.service,
                status="dispatched",
                created_at=self.sim.now,
                completed=Event(self.sim),
            )
            self._tickets[clone_ticket.ticket_id] = clone_ticket
            ticket.children.append(clone_ticket.ticket_id)
            self.sim.process(
                self._await_completion(clone_ticket),
                name=f"gw-await:{clone_ticket.ticket_id}",
            )
            self._watch_ticket(clone_ticket)
            body = _op_reply(clone_ticket, state="dispatched")
        elif op == "dispose":
            try:
                yield from self.adapter.dispose(ticket.agent_id)
            except Exception as exc:
                return HttpResponse(409, reason=f"dispose failed: {exc}")
            ticket.status = "disposed"
            self.file_directory.release(ticket.ticket_id)
            if ticket.span is not None:
                ticket.span.end(status="disposed")
            body = _op_reply(ticket, state="disposed")
        else:
            return HttpResponse(400, reason=f"unknown op {op!r}")
        return HttpResponse(200, body=body, body_size=len(body))


def _op_reply(ticket: Ticket, state: str) -> bytes:
    doc = Element("agentop")
    doc.add("ticket", text=ticket.ticket_id)
    doc.add("agent", text=ticket.agent_id)
    doc.add("state", text=state)
    return write_bytes(doc)
