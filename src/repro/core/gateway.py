"""The Gateway: PDAgent's middle-tier service bridge (§3.2, Figs. 4–6).

The gateway accepts Packed Information over HTTP, verifies and unpacks it,
validates the dispatch key, materialises a mobile agent on the attached MAS
(through the :class:`~repro.mas.adapters.MASAdapter` boundary — never a
concrete runtime), and hands the device back a **ticket** it can later
redeem for the result XML document.

Internal components mirror the paper's Fig. 6 architecture:

* :class:`AgentDispatchHandler` — separates a received PI into modules;
* :class:`XmlWriter` — "read[s] the xml document and parse[s] all the user
  requirement parameters";
* :class:`AgentCreator` — "generate[s] mobile agent classes from the
  information if the supplied unique key is valid";
* :class:`DocumentCreator` — "create[s] different files … for the Mobile
  Agent Server to collect";
* :class:`FileDirectory` — "allocate[s] a space for storing these document
  and classes, and then … signal[s] the Mobile Agent Server".
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional, Union

from ..compressor import compress
from ..crypto import CryptoError, IntegrityError, KeyVault, validate_dispatch_key
from ..mas.adapters import MASAdapter
from ..mas.itinerary import Itinerary
from ..simnet.http import HttpRequest, HttpResponse, HttpServer
from ..simnet.primitives import Event
from ..telemetry.spans import Span, SpanContext
from ..xmlcodec import Element, XmlError, parse_bytes, write_bytes
from ..mas.serializer import value_to_xml
from .admission import AdmissionController, TokenBucket
from .config import PDAgentConfig
from .errors import (
    AuthorizationError,
    DeadlineExpiredError,
    DeploymentError,
    GatewayError,
    GatewayOverloadedError,
)
from .fleet import (
    FLEET_HEARTBEAT_PATH,
    FLEET_MIGRATE_PATH,
    Fleet,
    FleetClient,
    claim_reply,
    heartbeat_request,
)
from .packed_info import PIContent, unpack
from .security import GatewaySecurity
from .session import (
    HOPS_REMAINING_HEADER,
    HOPS_VISITED_HEADER,
    SessionManager,
)
from .storage import GatewayStorage, SessionRecord, make_storage
from .subscription import ServiceCatalog, SubscriptionDirectory, code_to_xml

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.topology import Network

__all__ = [
    "Gateway",
    "Ticket",
    "GATEWAY_PORT",
    "TASK_ID_HEADER",
    "AgentDispatchHandler",
    "XmlWriter",
    "AgentCreator",
    "DocumentCreator",
    "FileDirectory",
]

GATEWAY_PORT = 80
#: Request header carrying the device task id: the exactly-once fast path —
#: the gateway can dedup a retried upload before paying the unpack cost.
TASK_ID_HEADER = "x-task-id"


@dataclass
class Ticket:
    """Gateway-side record of one deployed application instance."""

    ticket_id: str
    agent_id: str
    device_id: str
    service: str
    #: dispatched | completed | retracted | disposed | failed | expired |
    #: superseded
    status: str
    created_at: float
    result_frame: Optional[bytes] = None
    completed: Optional[Event] = None
    children: list[str] = field(default_factory=list)  # clone tickets
    #: Device-generated idempotency key ("" for legacy dispatches).  Stored
    #: on the durable ticket so the volatile dedup index can be rebuilt
    #: after a gateway restart.
    task_id: str = ""
    #: When the result document was first successfully downloaded; starts
    #: the retention-TTL clock.
    first_downloaded_at: Optional[float] = None
    #: Fleet tier: the winning ticket this one lost its task to.  A
    #: superseded ticket holds no result; collects against it are
    #: redirected to the winner.
    superseded_by: str = ""
    #: Telemetry span covering the ticket's pending lifetime (dispatch →
    #: finalize); ``None`` for tickets created outside a traced dispatch.
    span: Optional[Span] = None


class XmlWriter:
    """Parses the decrypted PI document into parameters (Fig. 6)."""

    def __init__(self, security: GatewaySecurity) -> None:
        self._security = security

    def extract(self, frame: bytes) -> PIContent:
        try:
            return unpack(frame, self._security)
        except IntegrityError:
            raise
        except (XmlError, ValueError, KeyError) as exc:
            raise DeploymentError(f"malformed PI: {exc}") from exc


class AgentCreator:
    """Validates the dispatch key and deploys through the MAS adapter."""

    def __init__(self, directory: SubscriptionDirectory, adapter: MASAdapter) -> None:
        self._directory = directory
        self._adapter = adapter
        self._seen_nonces: set[tuple[str, str]] = set()

    def authorize(self, content: PIContent) -> None:
        """The §3.2 check: the unique key must match the subscription.

        Also enforces nonce freshness: a captured PI replayed later (same
        code id + nonce) is rejected, closing the §3.4 threat of stolen
        packages being re-submitted.
        """
        sub = self._directory.lookup(content.code_id)
        if sub is None:
            raise AuthorizationError(f"unknown code id {content.code_id!r}")
        if sub.device_id != content.device_id:
            raise AuthorizationError(
                f"code {content.code_id!r} belongs to {sub.device_id!r}"
            )
        if not validate_dispatch_key(
            content.dispatch_key, content.code_id, content.device_id, content.nonce
        ):
            raise AuthorizationError("invalid dispatch key")
        nonce_key = (content.code_id, content.nonce)
        if nonce_key in self._seen_nonces:
            raise AuthorizationError(
                f"replayed dispatch: nonce {content.nonce!r} already used "
                f"for {content.code_id!r}"
            )
        self._seen_nonces.add(nonce_key)

    def forget_nonces(self) -> None:
        """Drop the replay cache — it is process memory, lost on crash."""
        self._seen_nonces.clear()

    def create(
        self, content: PIContent, home: str, trace: Optional[SpanContext] = None
    ) -> Generator:
        """Process: instantiate + dispatch the agent; returns agent id."""
        if not self._adapter.supports(content.agent_class):
            raise DeploymentError(
                f"MAS does not support agent class {content.agent_class!r}"
            )
        itinerary = content.itinerary or Itinerary(origin=home)
        agent_id = yield from self._adapter.deploy(
            content.agent_class,
            owner=content.device_id,
            itinerary=itinerary,
            state={"params": content.params, "results": []},
            trace=trace,
        )
        return agent_id


class DocumentCreator:
    """Builds the result XML documents the device later downloads (§3.3)."""

    def build(self, ticket: "Ticket", result: Any, disposition: str) -> Element:
        doc = Element("result", {"ticket": ticket.ticket_id, "status": disposition})
        doc.add("agent", text=ticket.agent_id)
        doc.add("service", text=ticket.service)
        doc.append(value_to_xml(result, "data"))
        return doc


class FileDirectory:
    """Workspace allocator for per-dispatch documents and classes."""

    def __init__(self, quota_bytes: int = 64 * 1024 * 1024) -> None:
        self.quota_bytes = quota_bytes
        self._used = 0
        self._spaces: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return self._used

    def allocate(self, ticket_id: str, size: int) -> None:
        if self._used + size > self.quota_bytes:
            raise GatewayError("gateway file directory quota exceeded")
        self._spaces[ticket_id] = self._spaces.get(ticket_id, 0) + size
        self._used += size

    def release(self, ticket_id: str) -> None:
        self._used -= self._spaces.pop(ticket_id, 0)

    def tracked(self) -> list[str]:
        """Ticket ids currently holding workspace (for orphan audits)."""
        return list(self._spaces)

    def held(self, ticket_id: str) -> int:
        """Bytes currently allocated to ``ticket_id`` (0 if none)."""
        return self._spaces.get(ticket_id, 0)


class AgentDispatchHandler:
    """Separates a received PI and drives the Fig. 6 pipeline."""

    def __init__(self, gateway: "Gateway") -> None:
        self.gateway = gateway

    def handle(self, frame: bytes, trace: Optional[SpanContext] = None) -> Generator:
        """Process: full PI intake; returns ``(ticket_id, agent_id)``.

        ``trace`` is the device's exchange context (from the HTTP headers);
        when absent, the trace carried inside the PI document links the
        dispatch back to the device anyway.
        """
        gw = self.gateway
        epoch = gw.crash_epoch
        tele = gw.network.telemetry
        unpack_span = tele.start_span(
            "gateway.unpack",
            node=gw.address,
            parent=trace,
            attrs={"frame_bytes": len(frame)},
        )
        content: Optional[PIContent] = None
        try:
            # Unpack cost scales with the received frame; dispatch_cost_s
            # adds the fixed per-dispatch overhead (class loading, servlet
            # bookkeeping) the overload experiments stress.
            yield gw.node.compute(
                gw.config.unpack_cost(len(frame)) + gw.config.dispatch_cost_s
            )
            content = gw.xml_writer.extract(frame)
        finally:
            unpack_span.end(status="ok" if content is not None else "error")
        if trace is None and content.trace_id:
            # No headers (legacy client) — join the trace the PI carries.
            parent: Union[Span, SpanContext] = SpanContext(
                content.trace_id, content.trace_parent
            )
        else:
            parent = unpack_span.context
        # A crash during the unpack yield killed this servlet thread in the
        # real world: abort before minting a ticket, or the device's retry
        # (deduped against the restart-rebuilt index, which cannot know
        # about a ticket that does not exist yet) would race us into a
        # duplicate dispatch.  The 503 sends the device back through its
        # shed-retry path, which lands on the rebuilt index.
        if gw.crash_epoch != epoch:
            raise GatewayOverloadedError(
                "gateway restarted during PI intake; retry",
                retry_after=gw.config.shed_retry_after_s,
            )
        # Exactly-once admission, checked against the *authenticated* task id
        # from inside the PI, and crucially BEFORE the nonce-replay check in
        # authorize(): a byte-identical retried frame must dedup to its
        # existing ticket, not 403 as a replay.
        existing = gw._dedup_answer(content.task_id)
        if existing is not None:
            return existing
        # Deadline admission: a task whose useful life ended in the queue
        # (shed wait, retry loop, slow uplink) must never mint a ticket.
        # Checked after dedup — a retry of a task dispatched *in* time must
        # still find its ticket — and before authorize, so the nonce is not
        # burned for a frame that will not dispatch.
        if content.deadline and gw.sim.now > content.deadline:
            raise DeadlineExpiredError(
                f"task {content.task_id or content.dispatch_key!r} deadline "
                f"{content.deadline:.3f} passed at {gw.sim.now:.3f}"
            )
        dispatch_span = tele.start_span(
            "gateway.dispatch",
            node=gw.address,
            parent=parent,
            attrs={"service": content.service, "device": content.device_id},
        )
        try:
            gw.agent_creator.authorize(content)
            ticket = gw._new_ticket(content)
            ticket.span = tele.start_span(
                "gateway.ticket",
                node=gw.address,
                parent=dispatch_span,
                attrs={"ticket": ticket.ticket_id},
            )
            # Fleet tier: mint first, then claim the task at its owner.  A
            # claim that comes back "bound" means another gateway already
            # dispatched this task — hand its ticket to the device and
            # retire the local prospective one, never launching an agent.
            if (
                gw.fleet_client is not None
                and content.task_id
                and gw.config.dedup_enabled
            ):
                verdict, winner, winner_agent = yield from gw.fleet_client.claim(
                    content.task_id, ticket.ticket_id
                )
                if gw.crash_epoch != epoch:
                    # Crashed mid-claim: the prospective ticket cannot be
                    # dispatched by this dead servlet thread.
                    gw._fail_unlaunched_ticket(ticket)
                    dispatch_span.end(status="error")
                    raise GatewayOverloadedError(
                        "gateway restarted during fleet claim; retry",
                        retry_after=gw.config.shed_retry_after_s,
                    )
                if verdict == "bound":
                    gw._supersede_ticket(ticket, winner)
                    dispatch_span.end(status="superseded")
                    return winner, winner_agent
                if verdict == "handoff":
                    gw._handoff_accept(content.task_id, ticket)
                elif verdict == "unreachable":
                    gw._local_accept(content.task_id, ticket)
            gw.file_directory.allocate(
                ticket.ticket_id, len(content.code_body) + 2048
            )
            try:
                agent_id = yield from gw.agent_creator.create(
                    content, gw.address, trace=dispatch_span.context
                )
            except Exception:
                gw.file_directory.release(ticket.ticket_id)
                ticket.status = "failed"
                ticket.span.end(status="error")
                # The task produced no agent: unbind so a future retry may
                # legitimately dispatch afresh.
                gw.dedup.forget(ticket.task_id)
                gw.storage.tickets.persist(ticket)
                gw._release_fleet_claim(ticket)
                raise
            ticket.agent_id = agent_id
            gw.storage.tickets.persist(ticket)
            gw.network.tracer.count("gateway_dispatches")
            # Background: watch for the agent's completion and build the doc,
            # with a watchdog so a lost agent cannot wedge the ticket.
            gw.sim.process(
                gw._await_completion(ticket), name=f"gw-await:{ticket.ticket_id}"
            )
            gw._watch_ticket(ticket)
            dispatch_span.end(agent=agent_id)
            return ticket.ticket_id, agent_id
        finally:
            if dispatch_span.open:
                dispatch_span.end(status="error")


class Gateway:
    """A PDAgent gateway node.

    Parameters
    ----------
    network, address:
        Where the gateway lives (the node must already exist).
    adapter:
        The MAS boundary (usually a
        :class:`~repro.mas.adapters.LocalServerAdapter` over a co-located
        server).
    catalog, directory:
        Shared service catalogue and subscriber directory of the deployment.
    vault:
        Shared key vault; this gateway uses the keypair for its address.
    """

    def __init__(
        self,
        network: "Network",
        address: str,
        adapter: MASAdapter,
        catalog: ServiceCatalog,
        directory: SubscriptionDirectory,
        vault: KeyVault,
        config: Optional[PDAgentConfig] = None,
        port: int = GATEWAY_PORT,
        storage: Optional[GatewayStorage] = None,
    ) -> None:
        self.network = network
        self.node = network.node(address)
        self.adapter = adapter
        self.catalog = catalog
        self.directory = directory
        self.config = config or PDAgentConfig()
        self.security = GatewaySecurity(self.config, vault.keypair(address))
        self.xml_writer = XmlWriter(self.security)
        self.agent_creator = AgentCreator(directory, adapter)
        self.document_creator = DocumentCreator()
        self.file_directory = FileDirectory()
        self.dispatch_handler = AgentDispatchHandler(self)
        #: Ticket/dedup/result persistence.  Passing ``storage`` explicitly
        #: models process replacement: a fresh gateway adopting the durable
        #: state its predecessor left behind.
        self.storage = storage or make_storage(
            self.config.storage_backend, path=self.config.sqlite_path
        )
        #: Exactly-once admission index (volatile for the memory backend —
        #: rebuilt on restart(); authoritative and durable under sqlite).
        self.dedup = self.storage.dedup
        self._ticket_counter = itertools.count(
            self.storage.tickets.max_seq(f"{address}/t-") + 1
        )
        #: Incremented by crash(): in-flight intake handlers compare their
        #: entry epoch before minting a ticket, so a dispatch that straddled
        #: a crash aborts instead of racing the restarted dedup index.
        self.crash_epoch = 0
        #: Fleet tier (installed by :meth:`enable_fleet` at deployment
        #: build time when ``config.fleet_enabled``).
        self.fleet: Optional[Fleet] = None
        self.fleet_client: Optional[FleetClient] = None
        #: Locally-accepted task claims awaiting owner reconciliation.
        self._unreconciled: dict[str, str] = {}
        #: Graceful departure: while True, new uploads are refused with a
        #: structured 503 naming the ring successor.
        self.draining = False
        #: Items a completed drain knowingly left behind (dispatch
        #: stragglers, unacked batches) — audited by the simtest swarm.
        self.drain_leftover: frozenset[str] = frozenset()
        #: Hinted handoff — claims this gateway arbitrated on behalf of a
        #: suspected-down owner: ``task_id -> (ticket_id, owner)``, replayed
        #: at the owner when it answers heartbeats again.
        self._handoff_hints: dict[str, tuple[str, str]] = {}
        #: Members with a suspicion probe in flight (one probe per suspect).
        self._probing: set[str] = set()
        self._adopt_recovered_tickets()
        #: Bounded, classed intake.  "upload" is the expensive agent-dispatch
        #: class; "download" the cheap result/agent-op class with its own
        #: pool, so a dispatch storm can never starve result collection.
        #: With admission disabled the same finite pools remain (the physical
        #: serialisation is real) but nothing sheds — the unbounded-queue
        #: baseline the overload experiment measures against.
        self.admission = AdmissionController(
            self.sim,
            metrics=network.telemetry.metrics,
            node=address,
            enabled=self.config.admission_enabled,
        )
        upload_bucket = (
            TokenBucket(
                self.sim, self.config.admission_rate, self.config.admission_burst
            )
            if self.config.admission_rate > 0
            else None
        )
        self.admission.add_class(
            "upload",
            workers=self.config.gateway_dispatch_workers,
            queue_limit=self.config.admission_queue_limit,
            bucket=upload_bucket,
            retry_after_s=self.config.shed_retry_after_s,
        )
        self.admission.add_class(
            "download",
            workers=self.config.gateway_download_workers,
            queue_limit=self.config.download_queue_limit,
            retry_after_s=self.config.shed_retry_after_s,
        )
        # Streaming session traffic (chunks, polls, hop reports) gets its
        # own pool: a chunk flood can starve neither dispatches nor result
        # downloads.  The completing chunk additionally takes an "upload"
        # slot for the dispatch itself — different pools, no deadlock.
        self.admission.add_class(
            "session",
            workers=self.config.gateway_session_workers,
            queue_limit=self.config.session_queue_limit,
            retry_after_s=self.config.shed_retry_after_s,
        )
        #: Streaming session layer (resumable uploads, partial streams,
        #: reconnect push).  Always constructed — its storage-backed state
        #: participates in crash/restart — but the HTTP surface answers 404
        #: unless ``config.session_enabled``.
        self.sessions = SessionManager(self)
        self.catalog.add_listener(self.sessions.notify_service_updated)
        self.http = HttpServer(
            self.node, port=port, service_time=self.config.gateway_service_time
        )
        self.http.route("/subscribe", self._handle_subscribe)
        self.http.route("/pi", self._handle_pi)
        self.http.route("/result/", self._handle_result)
        self.http.route("/relay/", self._handle_relay)
        self.http.route("/agent", self._handle_agent_op)
        self.http.route("/status", self._handle_status)
        self.http.route("/fleet/claim", self._handle_fleet_claim)
        self.http.route("/fleet/release", self._handle_fleet_release)
        self.http.route("/fleet/heartbeat", self._handle_fleet_heartbeat)
        self.http.route("/fleet/migrate", self._handle_fleet_migrate)
        self.http.route("/session/", self._handle_session)

    # ------------------------------------------------------------ plumbing
    @property
    def address(self) -> str:
        return self.node.address

    @property
    def sim(self):
        return self.network.sim

    def _adopt_recovered_tickets(self) -> None:
        """Re-arm process state on tickets recovered from durable storage.

        Events and watchdogs die with the process; a still-"dispatched"
        recovered ticket has also lost its agent-completion subscription,
        so the watchdog is its only path to finality — it fails (retriable)
        and the device's retry re-dispatches.
        """
        for ticket in self.storage.tickets.values():
            if ticket.completed is None:
                ticket.completed = Event(self.sim)
                if ticket.status != "dispatched":
                    ticket.completed.succeed(ticket.status)
            if ticket.status == "dispatched":
                self._watch_ticket(ticket)

    def enable_fleet(self, fleet: Fleet) -> None:
        """Join ``fleet``: consistent-hash task ownership + claim forwarding."""
        self.fleet = fleet
        self.fleet_client = FleetClient(self, fleet)
        fleet.view.add_listener(self._on_epoch_change)

    def _new_ticket(self, content: PIContent) -> Ticket:
        ticket = Ticket(
            ticket_id=f"{self.address}/t-{next(self._ticket_counter)}",
            agent_id="",
            device_id=content.device_id,
            service=content.service,
            status="dispatched",
            created_at=self.sim.now,
            completed=Event(self.sim),
            task_id=content.task_id,
        )
        self.storage.tickets.insert(ticket)
        # Bind before the (slow) agent creation so a retry arriving while
        # the first dispatch is still materialising dedups onto it instead
        # of racing a sibling dispatch through authorize().
        if self.config.dedup_enabled:
            self.dedup.bind(content.task_id, ticket.ticket_id)
        return ticket

    def _foreign_fleet_ticket(self, ticket_id: str) -> bool:
        """Was ``ticket_id`` minted by another member of this fleet?"""
        if self.fleet is None:
            return False
        origin, sep, _ = ticket_id.partition("/t-")
        return bool(sep) and origin != self.address and origin in self.fleet

    def _dedup_answer(self, task_id: str) -> Optional[tuple[str, str]]:
        """``(ticket_id, agent_id)`` for a retried upload, or ``None``.

        The bound ticket may live on *another* fleet gateway (a roaming
        retry claimed there, or a claim bound here as owner): the id is
        answered as-is — the device collects through any gateway — and the
        binding is kept.  Only a binding to a vanished *local* ticket is
        treated as stale and dropped.
        """
        if not (task_id and self.config.dedup_enabled):
            return None
        ticket_id = self.dedup.lookup(task_id, self.sim.now)
        if ticket_id is None:
            return None
        ticket = self.storage.tickets.get(ticket_id)
        if ticket is not None:
            if ticket.status == "superseded" and ticket.superseded_by:
                self.network.tracer.count("gateway.dedup_hit")
                return ticket.superseded_by, ""
            self.network.tracer.count("gateway.dedup_hit")
            return ticket.ticket_id, ticket.agent_id
        if self._foreign_fleet_ticket(ticket_id):
            self.network.tracer.count("gateway.dedup_hit")
            return ticket_id, ""
        self.dedup.forget(task_id)  # ticket evicted out-of-band; stale index
        return None

    def ticket(self, ticket_id: str) -> Ticket:
        found = self.storage.tickets.get(ticket_id)
        if found is None:
            raise GatewayError(f"unknown ticket {ticket_id!r}")
        return found

    def tickets(self) -> list[Ticket]:
        """Every ticket this gateway has minted (auditing/experiments)."""
        return self.storage.tickets.values()

    # ------------------------------------------------------------ crash model
    def crash(self) -> None:
        """Gateway process dies: volatile state is lost, durable state kept.

        Mirrors the PR-1 fault model: the node stops listening (clients see
        resets/refusals), the in-memory dedup index and admission queues
        vanish, but the ticket store — the servlet container's persistent
        session state — survives for :meth:`restart` to recover from.
        """
        if not self.node.crashed:
            self.node.suspend_listeners()
        self.crash_epoch += 1
        self.storage.on_crash()
        self.admission.drop_queued()
        self.agent_creator.forget_nonces()
        self.sessions.on_crash()
        self.network.tracer.count("gateway_crashes")

    def restart(self) -> int:
        """Bring the gateway back; recover the dedup index.

        Exactly-once must hold *across* the crash: a device retrying a
        pre-crash task after the restart has to land on its original
        ticket.  The memory backend reconstructs the volatile index from
        the durable ticket store before any request is served; the sqlite
        backend's index never died.  Orphaned workspace — allocations
        whose ticket vanished mid-dispatch — is reclaimed.  Returns the
        number of usable dedup bindings.
        """
        rebuilt = self.storage.on_restart()
        for ticket_id in self.file_directory.tracked():
            if self.storage.tickets.get(ticket_id) is None:
                self.file_directory.release(ticket_id)
        if self.node.crashed:
            self.node.resume_listeners()
        self.draining = False
        if self.fleet is not None:
            # Rejoining after a detected failure (or a completed drain) is a
            # ring event: a new epoch, so stale claims get re-answered and
            # peers rebalance this member's key range back to it.
            view = self.fleet.view
            if view.state(self.address) != "active":
                view.rejoin(self.address)
            view.record_heartbeat(self.address, self.sim.now)
        self.network.tracer.count("gateway_restarts")
        return rebuilt

    def _await_completion(self, ticket: Ticket) -> Generator:
        result = yield self.adapter.wait_completion(ticket.agent_id)
        self._finalize_ticket(ticket, result, "completed")

    def _watch_ticket(self, ticket: Ticket) -> None:
        """Arm the per-ticket watchdog (no-op when disabled by config)."""
        if self.config.ticket_watchdog_s > 0:
            self.sim.process(
                self._ticket_watchdog(ticket), name=f"gw-watchdog:{ticket.ticket_id}"
            )

    def _ticket_watchdog(self, ticket: Ticket) -> Generator:
        """Finalize a ticket still "dispatched" after the deadline as "failed".

        A lost agent (crashed site, wedged MAS) must not leave the device —
        or a driving test — waiting on ``ticket.completed`` forever.  The
        failure document is marked retriable so the device knows a fresh
        deployment is worth attempting.
        """
        yield self.sim.timeout(self.config.ticket_watchdog_s)
        if self.storage.tickets.get(ticket.ticket_id) is not ticket:
            return  # migrated away (drain/rebalance): no longer ours to fail
        if ticket.status != "dispatched":
            return
        error = {
            "error": "watchdog-timeout",
            "reason": (
                f"agent {ticket.agent_id or '<unassigned>'} did not complete "
                f"within {self.config.ticket_watchdog_s:g}s"
            ),
            "retriable": True,
        }
        self._finalize_ticket(ticket, error, "failed")
        self.network.tracer.count("gateway_watchdog_failures")

    def _finalize_ticket(self, ticket: Ticket, result: Any, disposition: str) -> None:
        if ticket.status in (
            "completed", "retracted", "disposed", "failed", "expired", "superseded",
        ):
            return
        doc = self.document_creator.build(ticket, result, disposition)
        payload = compress(write_bytes(doc), self.config.codec)
        ticket.result_frame = self.security.protect_result(payload)
        ticket.status = disposition
        # The dispatch workspace (agent classes + scratch) is done with —
        # release it in *every* finalize path (watchdog included) and keep
        # only the result document, otherwise finalized tickets leak their
        # code-body allocation until dispose, or forever.
        self.file_directory.release(ticket.ticket_id)
        self.file_directory.allocate(ticket.ticket_id, len(ticket.result_frame))
        if ticket.completed is not None and not ticket.completed.triggered:
            ticket.completed.succeed(disposition)
        if disposition == "failed":
            # Exactly-once covers *successful* dispatch; a failed task may
            # be retried afresh, so its idempotency key is released —
            # locally and, for a forwarded claim, at the task's owner.
            self.dedup.forget(ticket.task_id)
            self._release_fleet_claim(ticket)
        else:
            self.storage.results.put(ticket.ticket_id, ticket.result_frame)
        self.storage.tickets.persist(ticket)
        self.network.tracer.count(f"gateway_results:{disposition}")
        # Reconnect-window push: devices holding an open session learn the
        # outcome on their next contact instead of blind-polling for it.
        self.sessions.notify_result_ready(ticket)
        if ticket.span is not None:
            ticket.span.end(status=disposition)

    def _expire_result(self, ticket: Ticket) -> Generator:
        """Process: reclaim a downloaded result after the retention TTL.

        Armed at the *first successful download*; when it fires, the
        document and its workspace are dropped and later downloads get the
        distinct 410 "expired" answer (vs 404 "unknown ticket").  The
        dedup binding is kept — a very late retry of the task still maps to
        this ticket instead of dispatching a fresh agent — unless
        ``dedup_ttl_s`` arms its expiry, bounding the index for long runs.
        """
        yield self.sim.timeout(self.config.result_ttl_s)
        if self.storage.tickets.get(ticket.ticket_id) is not ticket:
            return  # migrated away (drain/rebalance): the new home owns TTL
        if ticket.result_frame is None:
            return
        ticket.result_frame = None
        ticket.status = "expired"
        self.file_directory.release(ticket.ticket_id)
        self.storage.results.drop(ticket.ticket_id)
        # The partial stream shares the result document's lifetime.
        self.storage.sessions.drop_partials(ticket.ticket_id)
        self.storage.tickets.persist(ticket)
        self.network.tracer.count("gateway_results_expired")
        self._arm_dedup_expiry(ticket)

    def _arm_dedup_expiry(self, ticket: Ticket) -> None:
        """Schedule the task's dedup binding to lapse with its result."""
        ttl = self.config.dedup_ttl_s
        if ttl <= 0 or not ticket.task_id:
            return
        if self.dedup.lookup(ticket.task_id) != ticket.ticket_id:
            return  # rebound elsewhere (e.g. superseded): not ours to expire
        self.dedup.set_expiry(ticket.task_id, self.sim.now + ttl)
        self.sim.process(
            self._purge_expired_dedup(), name=f"gw-dedup-ttl:{ticket.ticket_id}"
        )

    def _purge_expired_dedup(self) -> Generator:
        yield self.sim.timeout(self.config.dedup_ttl_s)
        purged = self.dedup.purge_expired(self.sim.now)
        if purged:
            self.network.tracer.count("gateway_dedup_expired", purged)

    # ------------------------------------------------------------ fleet tier
    def _release_fleet_claim(self, ticket: Ticket) -> None:
        """Background: undo this ticket's claim at the task's owner."""
        if self.fleet_client is None or not ticket.task_id:
            return
        self._unreconciled.pop(ticket.task_id, None)
        if self.fleet.owner(ticket.task_id) == self.address:
            return
        self.sim.process(
            self.fleet_client.release(ticket.task_id, ticket.ticket_id),
            name=f"fleet-release:{ticket.ticket_id}",
        )

    def _fail_unlaunched_ticket(self, ticket: Ticket) -> None:
        """Retire a minted ticket whose dispatch never launched an agent."""
        ticket.status = "failed"
        self.dedup.forget(ticket.task_id)
        if ticket.completed is not None and not ticket.completed.triggered:
            ticket.completed.succeed("failed")
        if ticket.span is not None and ticket.span.open:
            ticket.span.end(status="error")
        self.storage.tickets.persist(ticket)
        self._release_fleet_claim(ticket)

    def _supersede_ticket(self, ticket: Ticket, winner_id: str) -> None:
        """This ticket lost its task to ``winner_id`` on another gateway.

        The local record is kept (status "superseded", pointing at the
        winner) so collects against it redirect instead of 404ing; the
        local dedup binding is repointed at the winner so later retries
        here answer with the authoritative ticket directly.
        """
        if ticket.status == "superseded":
            return
        ticket.status = "superseded"
        ticket.superseded_by = winner_id
        ticket.result_frame = None
        self.file_directory.release(ticket.ticket_id)
        self.storage.results.drop(ticket.ticket_id)
        if ticket.task_id:
            self.dedup.bind(ticket.task_id, winner_id)
        self._unreconciled.pop(ticket.task_id, None)
        if ticket.completed is not None and not ticket.completed.triggered:
            ticket.completed.succeed("superseded")
        if ticket.span is not None and ticket.span.open:
            ticket.span.end(status="superseded")
        self.storage.tickets.persist(ticket)
        self.network.tracer.count("gateway_superseded")

    def _local_accept(self, task_id: str, ticket: Ticket) -> None:
        """Owner unreachable: dispatch locally, reconcile in the background.

        Availability over strict dedup — the device is answered now; a
        duplicate this may create is superseded (agent retracted) as soon
        as the owner answers a re-claim.
        """
        self._unreconciled[task_id] = ticket.ticket_id
        self.network.tracer.count("fleet.local_accepts")
        self.sim.process(
            self._reconcile(task_id, ticket), name=f"fleet-reconcile:{ticket.ticket_id}"
        )

    def _reconcile(self, task_id: str, ticket: Ticket) -> Generator:
        config = self.config
        for _ in range(config.fleet_reconcile_attempts):
            yield self.sim.timeout(config.fleet_reconcile_interval_s)
            if self._unreconciled.get(task_id) != ticket.ticket_id:
                return  # released, superseded, or failed meanwhile
            verdict, winner, _agent = yield from self.fleet_client.claim(
                task_id, ticket.ticket_id
            )
            if verdict in ("granted", "local"):
                self._unreconciled.pop(task_id, None)
                self.network.tracer.count("fleet.reconciled")
                return
            if verdict == "bound":
                yield from self._supersede_with_retract(ticket, winner)
                self.network.tracer.count("fleet.reconciled_superseded")
                return
        self._unreconciled.pop(task_id, None)
        self.network.tracer.count("fleet.reconcile_abandoned")

    def _supersede_with_retract(self, ticket: Ticket, winner_id: str) -> Generator:
        """Supersede a ticket whose agent may already be running."""
        if ticket.status == "dispatched" and ticket.agent_id:
            try:
                yield from self.adapter.retract(ticket.agent_id)
            except Exception:  # noqa: BLE001 - agent already gone is fine
                pass
        if ticket.status in ("dispatched", "completed", "expired"):
            self._supersede_ticket(ticket, winner_id)

    # ------------------------------------------------------------ HTTP handlers
    def _handle_subscribe(self, req: HttpRequest) -> HttpResponse:
        """§3.1 code download: body is ``<subscribe service device>``."""
        try:
            doc = parse_bytes(req.body)
            service = doc.require("service")
            device_id = doc.require("device")
            code = self.catalog.lookup(service)
        except Exception as exc:
            return HttpResponse(400, reason=str(exc))
        sub = self.directory.subscribe(device_id, code)
        xml = write_bytes(code_to_xml(code, sub.code_id))
        frame = self.security.protect_result(compress(xml, self.config.codec))
        self.network.tracer.count("gateway_subscriptions")
        return HttpResponse(200, body=frame, body_size=len(frame))

    def _dispatched_response(self, ticket_id: str, agent_id: str) -> HttpResponse:
        doc = Element("dispatched")
        doc.add("ticket", text=ticket_id)
        doc.add("agent", text=agent_id)
        body = write_bytes(doc)
        return HttpResponse(200, body=body, body_size=len(body))

    def _shed_response(self, exc: GatewayOverloadedError) -> HttpResponse:
        """Structured load shed: 503 + Retry-After header + XML error doc."""
        self.network.tracer.count("gateway.shed")
        retry_after = exc.retry_after
        doc = Element("overloaded", {"retry-after": f"{retry_after:g}"})
        doc.add("reason", text=str(exc))
        body = write_bytes(doc)
        return HttpResponse(
            503,
            body=body,
            body_size=len(body),
            reason=str(exc),
            headers={"Retry-After": f"{retry_after:g}"},
        )

    def _handle_pi(self, req: HttpRequest) -> Generator:
        """§3.2 service execution: body is the PI wire frame.

        Intake discipline, in order: (1) the exactly-once fast path — a
        task id already bound to a ticket answers immediately, costing no
        worker slot and no unpack; (2) admission for the "upload" class —
        shed with 503 + Retry-After when saturated; (3) the Fig. 6 dispatch
        pipeline under a held worker slot.
        """
        if not isinstance(req.body, (bytes, bytearray)):
            return HttpResponse(400, reason="PI body must be bytes")
            yield  # pragma: no cover - unreachable; keeps handler a generator
        arrived = self.sim.now
        try:
            resp = yield from self._intake_frame(
                bytes(req.body),
                task_id=req.headers.get(TASK_ID_HEADER, ""),
                trace=SpanContext.from_headers(req.headers),
            )
            return resp
        finally:
            # Per-priority latency histogram (sheds and dedup hits included:
            # what the device experienced, whatever the outcome).
            self.network.tracer.observe(
                "gateway.latency:upload", self.sim.now - arrived
            )

    def _intake_frame(
        self, frame: bytes, task_id: str = "", trace: Optional[SpanContext] = None
    ) -> Generator:
        """Process: the shared PI intake — dedup, admission, dispatch.

        The one-shot ``/pi`` handler and the session layer's completing
        chunk both drive this exact path, so exactly-once and overload
        protection hold identically however the frame arrived.  ``task_id``
        is the unauthenticated fast-path hint (the header for ``/pi``, the
        session record for a chunked upload); the authoritative id inside
        the PI is re-checked by the dispatch pipeline.
        """
        tracer = self.network.tracer
        existing = self._dedup_answer(task_id)
        if existing is not None:
            return self._dispatched_response(*existing)
        if self.draining:
            # Graceful departure: dedup answers above still serve (cheap,
            # and the ticket may live elsewhere anyway), but no NEW work is
            # admitted — the device is pointed at the ring successor.
            return self._drain_response()
        try:
            admission = self.admission.try_admit("upload")
        except GatewayOverloadedError as exc:
            return self._shed_response(exc)
        try:
            yield admission.request
            tracer.observe(
                "gateway.queue_wait:upload", self.sim.now - admission.enqueued_at
            )
            # Re-check after the queue wait: an identical retry may have
            # been admitted and dispatched while this one waited.
            existing = self._dedup_answer(task_id)
            if existing is not None:
                return self._dispatched_response(*existing)
            try:
                ticket_id, agent_id = yield from self.dispatch_handler.handle(
                    frame, trace=trace
                )
            except GatewayOverloadedError as exc:
                # Crash-epoch abort mid-intake: answer like a shed so
                # the device retries onto the restarted gateway.
                return self._shed_response(exc)
            except AuthorizationError as exc:
                return HttpResponse(403, reason=str(exc))
            except DeadlineExpiredError as exc:
                # Deterministic refusal: the deadline will not un-expire, so
                # the marker header tells the device to stop retrying — and
                # to not fail over, since every gateway shares the clock.
                return HttpResponse(
                    400, reason=str(exc), headers={"x-deadline-expired": "1"}
                )
            except (DeploymentError, IntegrityError, CryptoError) as exc:
                # Structural damage (bad envelope/frame) and integrity
                # failures are the client's problem, not a server fault.
                return HttpResponse(400, reason=str(exc))
        finally:
            admission.release()
        return self._dispatched_response(ticket_id, agent_id)

    def _handle_session(self, req: HttpRequest) -> Generator:
        """Streaming session endpoint: ``/session/<op>[/<session-id>]``.

        All session traffic — open/resume handshakes, chunks, polls,
        closes, and MAS hop reports — runs under the dedicated "session"
        admission class.  The completing chunk's dispatch additionally
        passes through the "upload" class inside
        :meth:`SessionManager._commit`, so chunk floods contend with
        uploads only at the moment they become one.
        """
        if not self.config.session_enabled:
            return HttpResponse(404, reason="streaming sessions not enabled")
            yield  # pragma: no cover - unreachable; keeps handler a generator
        if self.draining and req.path.startswith("/session/open"):
            # New-session handshakes are new uploads: refuse with the
            # successor hint.  In-flight session ops keep flowing so the
            # drain can quiesce them.
            return self._drain_response()
        arrived = self.sim.now
        tracer = self.network.tracer
        try:
            try:
                admission = self.admission.try_admit("session")
            except GatewayOverloadedError as exc:
                return self._shed_response(exc)
            try:
                yield admission.request
                tracer.observe(
                    "gateway.queue_wait:session",
                    self.sim.now - admission.enqueued_at,
                )
                rest = req.path[len("/session/") :]
                op, _, session_id = rest.partition("/")
                if op == "open":
                    return self.sessions.handle_open(req)
                if op == "chunk":
                    resp = yield from self.sessions.handle_chunk(req, session_id)
                    return resp
                if op == "poll":
                    return self.sessions.handle_poll(req, session_id)
                if op == "close":
                    return self.sessions.handle_close(req, session_id)
                if op == "partial":
                    return self.sessions.receive_hop_report(req)
                return HttpResponse(404, reason=f"unknown session op {op!r}")
            finally:
                admission.release()
        finally:
            tracer.observe("gateway.latency:session", self.sim.now - arrived)

    def _handle_result(self, req: HttpRequest) -> Generator:
        """§3.3 result collection: GET /result/<ticket-id>.

        Runs under the "download" admission class — its own worker pool, so
        result collection stays responsive through an upload storm.  The
        first successful download arms the retention TTL; a ticket whose
        document has been reclaimed answers 410 ("expired" — the task ran,
        you came back too late), distinct from 404 ("unknown ticket").
        """
        arrived = self.sim.now
        tracer = self.network.tracer
        try:
            try:
                admission = self.admission.try_admit("download")
            except GatewayOverloadedError as exc:
                return self._shed_response(exc)
            try:
                yield admission.request
                ticket_id = req.path[len("/result/") :]
                local = self.storage.tickets.get(ticket_id)
                hopped = "x-fleet-hop" in req.headers
                if (
                    local is not None
                    and local.status == "superseded"
                    and local.superseded_by
                ):
                    # Collect-anywhere: this ticket lost its task; follow
                    # the winner (never itself superseded — at most one
                    # extra hop, so safe even on a relayed request).
                    resp = yield from self._follow_supersede(local)
                    return resp
                origin, sep, _ = ticket_id.partition("/t-")
                if (
                    local is None
                    and sep
                    and origin == self.address
                    and self.fleet is not None
                ):
                    # One of OUR ticket ids that we no longer hold: it was
                    # migrated out during a drain.  The current ring
                    # successor is the deterministic next home — relay even
                    # on a hopped request (the successor answers locally or
                    # 404s, so this terminates).
                    successor = self.fleet.view.successor(self.address)
                    if successor:
                        resp = yield from self._relay_fetch(successor, ticket_id)
                        return resp
                if local is None and not hopped and self._foreign_fleet_ticket(
                    ticket_id
                ):
                    # A fleet sibling minted this ticket: fetch from its
                    # origin instead of answering 404 to a roaming device.
                    # A non-active origin (draining/down) can't answer —
                    # its migrated state lives at its ring successor.
                    target = origin
                    if self.fleet.view.state(origin) != "active":
                        target = self.fleet.view.successor(origin) or origin
                        self.network.tracer.count("fleet.collect_rerouted")
                    resp = yield from self._relay_fetch(target, ticket_id)
                    return resp
                return self._result_response(ticket_id)
            finally:
                admission.release()
        finally:
            tracer.observe("gateway.latency:download", self.sim.now - arrived)

    def _follow_supersede(self, ticket: Ticket) -> Generator:
        winner = ticket.superseded_by
        self.network.tracer.count("gateway_supersede_redirects")
        origin, sep, _ = winner.partition("/t-")
        if not sep or origin == self.address or origin not in (self.fleet or ()):
            return self._result_response(winner)
        resp = yield from self._relay_fetch(origin, winner)
        return resp

    def _result_response(self, ticket_id: str) -> HttpResponse:
        try:
            ticket = self.ticket(ticket_id)
        except GatewayError as exc:
            return HttpResponse(404, reason=str(exc))
        if ticket.status == "expired":
            return HttpResponse(
                410, reason=f"result for {ticket_id} expired after download"
            )
        if ticket.result_frame is None:
            return HttpResponse(
                204,
                reason="result not ready",
                headers=self._hop_progress_headers(ticket),
            )
        if ticket.first_downloaded_at is None:
            ticket.first_downloaded_at = self.sim.now
            self.storage.tickets.persist(ticket)
            if self.config.result_ttl_s > 0:
                self.sim.process(
                    self._expire_result(ticket), name=f"gw-expire:{ticket.ticket_id}"
                )
        return HttpResponse(
            200, body=ticket.result_frame, body_size=len(ticket.result_frame)
        )

    def _hop_progress_headers(self, ticket: Ticket) -> dict[str, str]:
        """Itinerary progress headers for a "result not ready" answer.

        The counts come from the live agent's (or its latest checkpoint's)
        itinerary cursor via the adapter; adapters without the optional
        ``hop_progress`` hook — or agents the MAS no longer knows — yield
        no headers, and the device falls back to fixed-interval polling.
        """
        probe = getattr(self.adapter, "hop_progress", None)
        if probe is None or not ticket.agent_id:
            return {}
        progress = probe(ticket.agent_id)
        if progress is None:
            return {}
        visited, remaining = progress
        return {
            HOPS_VISITED_HEADER: str(visited),
            HOPS_REMAINING_HEADER: str(remaining),
        }

    def _handle_status(self, req: HttpRequest) -> HttpResponse:
        """Gateway self-monitoring: ticket counts and workspace usage.

        Administration endpoint for operators (and for tests/benchmarks
        verifying gateway-side state without reaching into internals).
        """
        by_status: dict[str, int] = {}
        for ticket in self.storage.tickets.values():
            by_status[ticket.status] = by_status.get(ticket.status, 0) + 1
        doc = Element("gatewaystatus", {"address": self.address})
        doc.add("mas", text=getattr(self.adapter, "name", "unknown"))
        doc.add(
            "workspace",
            {
                "used": str(self.file_directory.used_bytes),
                "quota": str(self.file_directory.quota_bytes),
            },
        )
        tickets = doc.add("tickets", {"total": str(len(self.storage.tickets))})
        for status, count in sorted(by_status.items()):
            tickets.add("bucket", {"status": status, "count": str(count)})
        body = write_bytes(doc)
        return HttpResponse(200, body=body, body_size=len(body))

    def _handle_relay(self, req: HttpRequest) -> Generator:
        """Result relay (mobility extension to §3.3).

        ``GET /relay/<origin-gateway>/<ticket-id>``: a user who moved after
        dispatching collects from *this* (now-nearest) gateway; we fetch the
        result document from the dispatching gateway over the wired network
        and hand it through.  The wired hop is cheap; the user's wireless hop
        stays short — the same asymmetry the whole design exploits.
        """
        rest = req.path[len("/relay/") :]
        origin, _, ticket_id = rest.partition("/")
        if not origin or not ticket_id:
            return HttpResponse(400, reason="need /relay/<gateway>/<ticket>")
            yield  # pragma: no cover - keeps the handler a generator
        if origin == self.address:
            resp = yield from self._handle_result(
                HttpRequest(method="GET", path=f"/result/{ticket_id}", client=req.client)
            )
            return resp
        resp = yield from self._relay_fetch(origin, ticket_id)
        return resp

    def _relay_fetch(self, origin: str, ticket_id: str) -> Generator:
        """Process: fetch ``/result/<ticket_id>`` from ``origin``, pass through.

        Shared by the explicit ``/relay/`` endpoint, foreign-ticket collects
        and supersede redirects.  The ``x-fleet-hop`` marker stops a
        confused peer from relaying an unknown ticket back out (supersede
        redirects stay allowed — the winner is never itself superseded, so
        they terminate in one extra hop).
        """
        from ..simnet.http import request as http_request
        from ..simnet.transport import TransportError

        try:
            upstream = yield from http_request(
                self.network,
                self.address,
                origin,
                "GET",
                f"/result/{ticket_id}",
                port=GATEWAY_PORT,
                purpose="gw-relay",
                raise_for_status=False,
                headers={"x-fleet-hop": "1"},
            )
        except TransportError as exc:
            return HttpResponse(502, reason=f"origin gateway unreachable: {exc}")
        if upstream.status == 204:
            # Keep the origin's hop-progress headers: the device's adaptive
            # poll works the same through a relay as it does directly.
            return HttpResponse(
                204, reason="result not ready", headers=dict(upstream.headers)
            )
        if not upstream.ok:
            # Pass the structured error through — status AND headers (e.g.
            # the origin's Retry-After), not just a collapsed reason string.
            return HttpResponse(
                upstream.status,
                reason=upstream.reason,
                headers=dict(upstream.headers),
            )
        self.network.tracer.count("gateway_relays")
        # The frame is integrity-tagged by the origin gateway; pass through.
        return HttpResponse(
            200, body=upstream.body, body_size=upstream.body_size
        )

    def _handle_agent_op(self, req: HttpRequest) -> Generator:
        """§3.6 remote agent management: ``<agentop op ticket>``."""
        try:
            doc = parse_bytes(req.body)
            op = doc.require("op")
            ticket = self.ticket(doc.require("ticket"))
        except (XmlError, KeyError, GatewayError, TypeError) as exc:
            return HttpResponse(400, reason=str(exc))
            yield  # pragma: no cover - unreachable; keeps handler a generator
        if op == "status":
            try:
                state = yield from self.adapter.status(ticket.agent_id)
            except Exception:
                state = ticket.status
            body = _op_reply(ticket, state=state)
        elif op == "retract":
            try:
                yield from self.adapter.retract(ticket.agent_id)
            except Exception as exc:
                return HttpResponse(409, reason=f"retract failed: {exc}")
            # A retracted agent yields a partial-result document.
            self._finalize_ticket(ticket, {"partial": True}, "retracted")
            body = _op_reply(ticket, state="retracted")
        elif op == "clone":
            try:
                clone_id = yield from self.adapter.clone(ticket.agent_id)
            except Exception as exc:
                return HttpResponse(409, reason=f"clone failed: {exc}")
            clone_ticket = Ticket(
                ticket_id=f"{self.address}/t-{next(self._ticket_counter)}",
                agent_id=clone_id,
                device_id=ticket.device_id,
                service=ticket.service,
                status="dispatched",
                created_at=self.sim.now,
                completed=Event(self.sim),
            )
            self.storage.tickets.insert(clone_ticket)
            ticket.children.append(clone_ticket.ticket_id)
            self.storage.tickets.persist(ticket)
            self.sim.process(
                self._await_completion(clone_ticket),
                name=f"gw-await:{clone_ticket.ticket_id}",
            )
            self._watch_ticket(clone_ticket)
            body = _op_reply(clone_ticket, state="dispatched")
        elif op == "dispose":
            try:
                yield from self.adapter.dispose(ticket.agent_id)
            except Exception as exc:
                return HttpResponse(409, reason=f"dispose failed: {exc}")
            ticket.status = "disposed"
            self.file_directory.release(ticket.ticket_id)
            self.storage.results.drop(ticket.ticket_id)
            self.storage.sessions.drop_partials(ticket.ticket_id)
            self.storage.tickets.persist(ticket)
            self._arm_dedup_expiry(ticket)
            if ticket.span is not None:
                ticket.span.end(status="disposed")
            body = _op_reply(ticket, state="disposed")
        else:
            return HttpResponse(400, reason=f"unknown op {op!r}")
        return HttpResponse(200, body=body, body_size=len(body))

    # ------------------------------------------------------------ fleet HTTP
    def _handle_fleet_claim(self, req: HttpRequest) -> HttpResponse:
        """Owner side of the claim protocol: ``<claim task ticket from>``.

        Atomic (plain handler, no yields): first claim binds and is
        granted; a claim for an already-bound task answers "bound" with
        the winning ticket, so concurrent roaming retries serialize here.
        """
        if self.fleet is None:
            return HttpResponse(404, reason="fleet tier not enabled")
        try:
            doc = parse_bytes(req.body)
            task_id = doc.require("task")
            ticket_id = doc.require("ticket")
        except (XmlError, KeyError, TypeError) as exc:
            return HttpResponse(400, reason=str(exc))
        view = self.fleet.view
        claim_epoch = doc.get("epoch", "")
        on_behalf_of = doc.get("for", "")
        if claim_epoch and int(claim_epoch) != view.epoch:
            # The claimant resolved ownership on a ring this fleet no
            # longer runs: answering "granted"/"bound" would be a verdict
            # from the wrong owner.  Send the new view; the claimant's next
            # round re-resolves.
            self.network.tracer.count("fleet.claims_stale")
            body = claim_reply(
                "stale", "", epoch=view.epoch, owner=view.owner(task_id)
            )
            return HttpResponse(200, body=body, body_size=len(body))
        if on_behalf_of and view.owner_excluding(task_id, on_behalf_of) != self.address:
            # Hinted handoff aimed at the wrong standby (the view moved
            # under the claimant): refuse rather than arbitrate a task this
            # gateway has no standing for.
            self.network.tracer.count("fleet.claims_misdirected")
            body = claim_reply(
                "stale", "", epoch=view.epoch, owner=view.owner(task_id)
            )
            return HttpResponse(200, body=body, body_size=len(body))
        if not self.config.dedup_enabled:
            body = claim_reply("granted", ticket_id)
            return HttpResponse(200, body=body, body_size=len(body))
        existing = self.dedup.lookup(task_id, self.sim.now)
        if existing is not None and existing != ticket_id:
            agent = ""
            local = self.storage.tickets.get(existing)
            if local is not None:
                if local.status == "superseded" and local.superseded_by:
                    existing = local.superseded_by
                else:
                    agent = local.agent_id
            self.network.tracer.count("fleet.claims_refused")
            if on_behalf_of and task_id not in self._handoff_hints:
                # Make sure the absent owner learns the winner on recovery
                # even when the winning binding predates the handoff.
                self._record_handoff_hint(task_id, existing, on_behalf_of)
            body = claim_reply("bound", existing, agent)
            return HttpResponse(200, body=body, body_size=len(body))
        self.dedup.bind(task_id, ticket_id)
        self.network.tracer.count("fleet.claims_granted")
        if on_behalf_of:
            # Standby grant: remember it for the owner's return, and start
            # probing so recovery is noticed promptly.
            self._record_handoff_hint(task_id, ticket_id, on_behalf_of)
        body = claim_reply("granted", ticket_id)
        return HttpResponse(200, body=body, body_size=len(body))

    def _handle_fleet_release(self, req: HttpRequest) -> HttpResponse:
        """Undo a claim: only if the task is still bound to that ticket."""
        if self.fleet is None:
            return HttpResponse(404, reason="fleet tier not enabled")
        try:
            doc = parse_bytes(req.body)
            task_id = doc.require("task")
            ticket_id = doc.require("ticket")
        except (XmlError, KeyError, TypeError) as exc:
            return HttpResponse(400, reason=str(exc))
        released = self.dedup.lookup(task_id) == ticket_id
        if released:
            self.dedup.forget(task_id)
            self.network.tracer.count("fleet.claims_released")
        body = write_bytes(
            Element("releaseack", {"released": "1" if released else "0"})
        )
        return HttpResponse(200, body=body, body_size=len(body))

    def _handle_fleet_heartbeat(self, req: HttpRequest) -> HttpResponse:
        """Liveness probe: answering at all is the proof.

        The ack carries this member's epoch and state; the probe sender
        records the heartbeat in the shared view, which rejoins a
        ``down`` member automatically.
        """
        if self.fleet is None:
            return HttpResponse(404, reason="fleet tier not enabled")
        try:
            doc = parse_bytes(req.body)
            sender = doc.require("from")
        except (XmlError, KeyError, TypeError) as exc:
            return HttpResponse(400, reason=str(exc))
        view = self.fleet.view
        if sender != self.address:
            # Gossip both ways: hearing from a peer proves it lives too.
            view.record_heartbeat(sender, self.sim.now)
        ack = Element(
            "heartbeatack",
            {"epoch": str(view.epoch), "state": view.state(self.address)},
        )
        body = write_bytes(ack)
        return HttpResponse(200, body=body, body_size=len(body))

    def _handle_fleet_migrate(self, req: HttpRequest) -> HttpResponse:
        """Receive a batch of migrated state (drain or rebalance).

        Atomic and idempotent: every item applies first-wins through the
        storage adapters, so a retried batch (the sender never saw the ack)
        re-applies as a no-op and is re-acked.  The ack is the sender's
        licence to drop its local copy.
        """
        if self.fleet is None:
            return HttpResponse(404, reason="fleet tier not enabled")
        try:
            doc = parse_bytes(req.body)
        except XmlError as exc:
            return HttpResponse(400, reason=str(exc))
        accepted = 0
        for el in doc:
            self._apply_migrated(el)
            accepted += 1
        self.network.tracer.count("fleet.migrated_in", accepted)
        ack = Element(
            "migrateack",
            {"accepted": str(accepted), "epoch": str(self.fleet.view.epoch)},
        )
        body = write_bytes(ack)
        return HttpResponse(200, body=body, body_size=len(body))

    def _apply_migrated(self, el: Element) -> None:
        if el.tag == "binding":
            task_id = el.require("task")
            ticket_id = el.require("ticket")
            existing = self.dedup.lookup(task_id, self.sim.now)
            if existing is None:
                expires = el.get("expires", "")
                self.dedup.bind(
                    task_id, ticket_id, float(expires) if expires else None
                )
            elif existing != ticket_id:
                self.network.tracer.count("fleet.migrate_conflicts")
            return
        if el.tag == "ticket":
            ticket_id = el.require("id")
            if self.storage.tickets.get(ticket_id) is not None:
                return
            downloaded = el.get("downloaded", "")
            ticket = Ticket(
                ticket_id=ticket_id,
                agent_id=el.get("agent", ""),
                device_id=el.get("device", ""),
                service=el.get("service", ""),
                status=el.get("status", "completed"),
                created_at=float(el.get("created", "0")),
                completed=Event(self.sim),
                task_id=el.get("task", ""),
                first_downloaded_at=float(downloaded) if downloaded else None,
                superseded_by=el.get("superseded-by", ""),
                children=[c for c in el.get("children", "").split(",") if c],
            )
            if ticket.status != "dispatched":
                ticket.completed.succeed(ticket.status)
            frame_hex = el.findtext("frame")
            if frame_hex:
                ticket.result_frame = bytes.fromhex(frame_hex)
                self.storage.results.put(ticket.ticket_id, ticket.result_frame)
                self.file_directory.allocate(
                    ticket.ticket_id, len(ticket.result_frame)
                )
            self.storage.tickets.insert(ticket)
            for child in el.findall("partial"):
                if child.text:
                    self.storage.sessions.append_partial(
                        ticket.ticket_id, json.loads(child.text)
                    )
            if (
                ticket.result_frame is not None
                and ticket.first_downloaded_at is not None
                and self.config.result_ttl_s > 0
            ):
                # The origin's TTL timer died with the migration; restart
                # retention from arrival here.
                self.sim.process(
                    self._expire_result(ticket),
                    name=f"gw-expire:{ticket.ticket_id}",
                )
            return
        if el.tag == "session":
            session_id = el.require("id")
            if self.storage.sessions.get(session_id) is not None:
                return
            record = SessionRecord(
                session_id=session_id,
                device_id=el.get("device", ""),
                task_id=el.get("task", ""),
                total_bytes=int(el.get("total", "0")),
                digest=el.get("digest", ""),
                created_at=float(el.get("created", "0")),
                last_contact=float(el.get("contact", "0")),
                ticket_id=el.get("ticket", ""),
            )
            self.storage.sessions.create(record)
            for child in el.findall("chunk"):
                if child.text:
                    self.storage.sessions.put_chunk(
                        session_id,
                        int(child.get("offset", "0")),
                        bytes.fromhex(child.text),
                    )

    # ---------------------------------------------------- membership lifecycle
    def _on_epoch_change(self, epoch: int, reason: str, member: str) -> None:
        """Synchronous listener on the shared view: react to every bump.

        Reconciliation re-runs (the new view may finally name a reachable
        owner), recorded hints replay toward a rejoining member, and a join
        triggers the rebalance sweep that moves the joiner's key range —
        and any state parked with a stand-in — back where it belongs.
        """
        if self.node.crashed:
            return
        for task_id, ticket_id in list(self._unreconciled.items()):
            ticket = self.storage.tickets.get(ticket_id)
            if ticket is not None:
                self.sim.process(
                    self._reconcile_once(task_id, ticket),
                    name=f"fleet-reconcile-epoch:{ticket_id}",
                )
        if reason == "join" and member != self.address:
            self._replay_hints_for(member)
            if not self.draining:
                self.sim.process(
                    self._rebalance_after_join(member),
                    name=f"fleet-rebalance:{member}",
                )

    def _reconcile_once(self, task_id: str, ticket: Ticket) -> Generator:
        """One immediate re-claim after an epoch change (vs the timed loop)."""
        if self._unreconciled.get(task_id) != ticket.ticket_id:
            return
        verdict, winner, _agent = yield from self.fleet_client.claim(
            task_id, ticket.ticket_id
        )
        if self._unreconciled.get(task_id) != ticket.ticket_id:
            return  # raced the timed reconciler; it already settled
        if verdict in ("granted", "local"):
            self._unreconciled.pop(task_id, None)
            self.network.tracer.count("fleet.reconciled")
        elif verdict == "bound":
            yield from self._supersede_with_retract(ticket, winner)
            self.network.tracer.count("fleet.reconciled_superseded")

    # -------------------------------------------------------- failure detector
    def _suspect_member(self, member: str) -> None:
        """Arm a suspicion probe for ``member`` (one at a time, bounded).

        Called when a claim round fails against a member and when a handoff
        hint is recorded.  Event-driven rather than a standing heartbeat
        loop: quiescent simulations stay quiescent.
        """
        if self.fleet is None or member == self.address or self.node.crashed:
            return
        if self.fleet.view.state(member) != "active" or member in self._probing:
            return
        self._probing.add(member)
        self.network.tracer.count("fleet.suspects")
        self.sim.process(
            self._probe_suspect(member), name=f"fleet-probe:{member}:{self.address}"
        )

    def _probe_suspect(self, member: str) -> Generator:
        view = self.fleet.view
        config = self.config
        deadline = self.sim.now + config.fleet_suspicion_timeout_s
        try:
            while True:
                if self.node.crashed or view.state(member) != "active":
                    return
                alive = yield from self._heartbeat_probe(member)
                if alive:
                    view.record_heartbeat(member, self.sim.now)
                    self.network.tracer.count("fleet.suspicion_cleared")
                    self._replay_hints_for(member)
                    return
                if self.sim.now >= deadline:
                    self.network.tracer.count("fleet.marked_down")
                    view.mark_down(member)
                    return
                yield self.sim.timeout(config.fleet_heartbeat_interval_s)
        finally:
            self._probing.discard(member)

    def _heartbeat_probe(self, member: str) -> Generator:
        """Process: one bounded heartbeat round-trip; True iff it answered."""
        body = heartbeat_request(self.address, self.fleet.view.epoch)
        rpc = self.sim.process(
            self.fleet_client._rpc(
                member, FLEET_HEARTBEAT_PATH, body, purpose="fleet-heartbeat"
            ),
            name=f"fleet-hb:{member}",
        )
        deadline = self.sim.timeout(self.config.fleet_heartbeat_interval_s)
        fired = yield self.sim.any_of([rpc, deadline])
        if rpc not in fired:
            return False
        ok, _payload = fired[rpc]
        return ok

    # ---------------------------------------------------------- hinted handoff
    def _handoff_accept(self, task_id: str, ticket: Ticket) -> None:
        """The owner's standby granted our claim: dispatch, but reconcile.

        Unlike a blind local accept, a standby grant serialized concurrent
        roaming retries of the task; the background reconciler still runs so
        the real owner's verdict lands once it answers again.
        """
        self._unreconciled[task_id] = ticket.ticket_id
        self.network.tracer.count("fleet.handoff_accepts")
        self.sim.process(
            self._reconcile(task_id, ticket),
            name=f"fleet-reconcile:{ticket.ticket_id}",
        )

    def _record_handoff_hint(self, task_id: str, ticket_id: str, owner: str) -> None:
        self._handoff_hints[task_id] = (ticket_id, owner)
        self.network.tracer.count("fleet.hints_recorded")
        self._suspect_member(owner)

    def _replay_hints_for(self, member: str) -> None:
        """Spawn a replay of every hint held on ``member``'s behalf."""
        if self.node.crashed:
            return
        hints = [
            (task_id, ticket_id)
            for task_id, (ticket_id, owner) in sorted(self._handoff_hints.items())
            if owner == member
        ]
        if hints:
            self.sim.process(
                self._replay_hints(member, hints),
                name=f"fleet-hint-replay:{member}",
            )

    def _replay_hints(
        self, member: str, hints: list[tuple[str, str]]
    ) -> Generator:
        for task_id, ticket_id in hints:
            if self._handoff_hints.get(task_id) != (ticket_id, member):
                continue  # superseded or replayed by a racing pass
            outcome = yield from self.fleet_client.claim_at(
                member, task_id, ticket_id
            )
            if outcome is None:
                return  # gone again; the next recovery replays the rest
            verdict, winner, _agent = outcome
            if verdict == "stale":
                continue  # view moved mid-replay; the next epoch retriggers
            self._handoff_hints.pop(task_id, None)
            if verdict == "bound" and winner != ticket_id:
                # The owner knew a different winner all along (durable
                # index): repoint locally; the hinted ticket's claimant
                # reconciles itself against the owner.
                self.network.tracer.count("fleet.hints_conflicted")
                self.dedup.bind(task_id, winner)
                local = self.storage.tickets.get(ticket_id)
                if local is not None:
                    yield from self._supersede_with_retract(local, winner)
            else:
                self.network.tracer.count("fleet.hints_replayed")

    # ------------------------------------------------------------ drain protocol
    def drain(self) -> Generator:
        """Process: leave the ring gracefully, handing owned state onward.

        1. Stop admitting new uploads (structured 503 + successor hint) and
           leave the ring at a new epoch — claims re-resolve immediately.
        2. Quiesce: wait (bounded) for in-flight dispatches to finalize.
        3. Migrate dedup bindings to their ring owners and every ticket,
           retained result, partial stream and upload session to the ring
           successor over ``/fleet/migrate``.
        4. Record the drain as complete.  Returns items migrated.
        """
        if self.fleet is None:
            raise GatewayError("drain requires the fleet tier")
        if self.draining:
            return 0
        self.draining = True
        view = self.fleet.view
        self.network.tracer.count("fleet.drains_started")
        view.begin_drain(self.address)
        deadline = self.sim.now + self.config.fleet_drain_timeout_s
        while self.sim.now < deadline:
            if not any(
                t.status == "dispatched" for t in self.storage.tickets.values()
            ):
                break
            yield self.sim.timeout(0.5)
        migrated = yield from self._migrate_out()
        # Declare what legitimately stayed behind (dispatch stragglers the
        # quiesce window missed, batches whose ack never came): the swarm's
        # drain-handoff invariant condemns anything held by a drained
        # member that this ledger does not account for.
        self.drain_leftover = frozenset(
            [t.ticket_id for t in self.storage.tickets.values()]
            + [r.session_id for r in self.storage.sessions.values()]
            + [task_id for task_id, _, _ in self.dedup.items()]
        )
        view.finish_drain(self.address)
        self.network.tracer.count("fleet.drains_completed")
        return migrated

    def _migrate_out(self) -> Generator:
        """Process: push every owned item to its post-drain home, batched."""
        view = self.fleet.view
        per_dest: dict[str, list[Element]] = {}
        for task_id, ticket_id, expires_at in self.dedup.items():
            dest = view.owner(task_id)
            if not dest or dest == self.address:
                continue
            el = Element("binding", {"task": task_id, "ticket": ticket_id})
            if expires_at is not None:
                el.set("expires", repr(expires_at))
            per_dest.setdefault(dest, []).append(el)
        successor = view.successor(self.address)
        if successor:
            for ticket in self.storage.tickets.values():
                if ticket.status == "dispatched":
                    # Still owned by a live agent; the watchdog covers
                    # stragglers the quiesce window missed.
                    continue
                per_dest.setdefault(successor, []).append(
                    self._ticket_element(ticket)
                )
            for record in self.storage.sessions.values():
                per_dest.setdefault(successor, []).append(
                    self._session_element(record)
                )
        migrated = 0
        batch_size = self.config.fleet_migrate_batch
        for dest in sorted(per_dest):
            elements = per_dest[dest]
            for start in range(0, len(elements), batch_size):
                chunk = elements[start : start + batch_size]
                sent = yield from self._send_migrate_batch(dest, chunk)
                if sent:
                    migrated += len(chunk)
        return migrated

    def _send_migrate_batch(
        self, dest: str, elements: list[Element]
    ) -> Generator:
        """Process: one batch with bounded retries; commit on ack.

        Uncommitted items stay local — the drain is resumable: re-running
        it resends them, and first-wins application makes the resend safe.
        """
        doc = Element(
            "migrate", {"from": self.address, "epoch": str(self.fleet.view.epoch)}
        )
        for el in elements:
            doc.append(el)
        body = write_bytes(doc)
        attempts = self.config.fleet_migrate_attempts
        for attempt in range(attempts):
            ok, _payload = yield from self.fleet_client._rpc(
                dest, FLEET_MIGRATE_PATH, body, purpose="fleet-migrate"
            )
            if ok:
                for el in elements:
                    self._migrate_commit(el)
                self.network.tracer.count("fleet.migrated_out", len(elements))
                return True
            if attempt + 1 < attempts:
                yield self.sim.timeout(1.0)
        self.network.tracer.count("fleet.migrate_failed")
        return False

    def _migrate_commit(self, el: Element) -> None:
        """The receiver acked ``el``: drop the local copy."""
        if el.tag == "binding":
            self.dedup.forget(el.get("task", ""))
        elif el.tag == "ticket":
            ticket_id = el.get("id", "")
            self._unreconciled.pop(el.get("task", ""), None)
            self.file_directory.release(ticket_id)
            self.storage.results.drop(ticket_id)
            self.storage.sessions.drop_partials(ticket_id)
            self.storage.tickets.delete(ticket_id)
        elif el.tag == "session":
            self.storage.sessions.delete(el.get("id", ""))

    def _ticket_element(self, ticket: Ticket) -> Element:
        el = Element(
            "ticket",
            {
                "id": ticket.ticket_id,
                "agent": ticket.agent_id,
                "device": ticket.device_id,
                "service": ticket.service,
                "status": ticket.status,
                "created": repr(ticket.created_at),
                "task": ticket.task_id,
            },
        )
        if ticket.first_downloaded_at is not None:
            el.set("downloaded", repr(ticket.first_downloaded_at))
        if ticket.superseded_by:
            el.set("superseded-by", ticket.superseded_by)
        if ticket.children:
            el.set("children", ",".join(ticket.children))
        if ticket.result_frame is not None:
            el.add("frame", text=ticket.result_frame.hex())
        for entry in self.storage.sessions.partials(ticket.ticket_id):
            el.add("partial", text=json.dumps(entry, sort_keys=True))
        return el

    def _session_element(self, record: SessionRecord) -> Element:
        el = Element(
            "session",
            {
                "id": record.session_id,
                "device": record.device_id,
                "task": record.task_id,
                "total": str(record.total_bytes),
                "digest": record.digest,
                "created": repr(record.created_at),
                "contact": repr(record.last_contact),
                "ticket": record.ticket_id,
            },
        )
        for offset, data in sorted(
            self.storage.sessions.chunks(record.session_id).items()
        ):
            el.add("chunk", {"offset": str(offset)}, text=data.hex())
        return el

    def _drain_response(self) -> HttpResponse:
        """Structured refusal while draining: 503 + the successor to use."""
        successor = ""
        if self.fleet is not None:
            successor = self.fleet.view.successor(self.address)
        self.network.tracer.count("gateway.drain_refusals")
        retry_after = self.config.shed_retry_after_s
        doc = Element(
            "draining", {"successor": successor, "retry-after": f"{retry_after:g}"}
        )
        body = write_bytes(doc)
        headers = {"Retry-After": f"{retry_after:g}"}
        if successor:
            headers["x-fleet-successor"] = successor
        return HttpResponse(
            503,
            body=body,
            body_size=len(body),
            reason="gateway draining",
            headers=headers,
        )

    # ------------------------------------------------------------- rebalancing
    def _rebalance_after_join(self, member: str) -> Generator:
        """Process: move state where the post-join ring says it belongs.

        Two sweeps, both bounded by what this gateway actually holds:

        * **Home sweep** — tickets and sessions minted by a now-active
          origin (parked here by an earlier drain) are moved back, so
          prefix-routed collects find them at the origin again.
        * **Binding sweep** — dedup bindings whose ring owner is now the
          joiner are *copied* to it (first-wins; the local copy stays), so
          a claim for a task in the joiner's new range cannot be granted
          blind.  This is the epoch-safe half of bounded key movement.
        """
        if self.fleet is None or self.draining or self.node.crashed:
            return 0
        view = self.fleet.view
        per_dest: dict[str, list[Element]] = {}
        moves: list[Element] = []
        for ticket in self.storage.tickets.values():
            origin, sep, _ = ticket.ticket_id.partition("/t-")
            if (
                sep
                and origin != self.address
                and view.state(origin) == "active"
                and ticket.status != "dispatched"
            ):
                el = self._ticket_element(ticket)
                per_dest.setdefault(origin, []).append(el)
                moves.append(el)
        for record in self.storage.sessions.values():
            origin, sep, _ = record.session_id.partition("/s-")
            if sep and origin != self.address and view.state(origin) == "active":
                el = self._session_element(record)
                per_dest.setdefault(origin, []).append(el)
                moves.append(el)
        copies: list[Element] = []
        if member != self.address and view.state(member) == "active":
            for task_id, ticket_id, expires_at in self.dedup.items():
                if view.owner(task_id) != member:
                    continue
                el = Element("binding", {"task": task_id, "ticket": ticket_id})
                if expires_at is not None:
                    el.set("expires", repr(expires_at))
                per_dest.setdefault(member, []).append(el)
                copies.append(el)
        moved = 0
        move_ids = {id(el) for el in moves}
        batch_size = self.config.fleet_migrate_batch
        for dest in sorted(per_dest):
            elements = per_dest[dest]
            for start in range(0, len(elements), batch_size):
                chunk = elements[start : start + batch_size]
                doc = Element(
                    "migrate",
                    {"from": self.address, "epoch": str(view.epoch)},
                )
                for el in chunk:
                    doc.append(el)
                body = write_bytes(doc)
                ok, _payload = yield from self.fleet_client._rpc(
                    dest, FLEET_MIGRATE_PATH, body, purpose="fleet-rebalance"
                )
                if ok:
                    for el in chunk:
                        # Moves delete locally; binding copies stay (a
                        # racing claim may still land here; first-wins at
                        # the new owner keeps both consistent).
                        if id(el) in move_ids:
                            self._migrate_commit(el)
                    moved += len(chunk)
        if moved:
            self.network.tracer.count("fleet.rebalanced", moved)
        return moved


def _op_reply(ticket: Ticket, state: str) -> bytes:
    doc = Element("agentop")
    doc.add("ticket", text=ticket.ticket_id)
    doc.add("agent", text=ticket.agent_id)
    doc.add("state", text=state)
    return write_bytes(doc)
