"""PDAgent platform exceptions."""

from __future__ import annotations

__all__ = [
    "PDAgentError",
    "SubscriptionError",
    "DeploymentError",
    "AuthorizationError",
    "ResultNotReadyError",
    "GatewayError",
    "NoGatewayAvailableError",
]


class PDAgentError(Exception):
    """Base class for platform failures."""


class SubscriptionError(PDAgentError):
    """Service code download/registration failed (§3.1)."""


class DeploymentError(PDAgentError):
    """Packed Information upload or agent creation failed (§3.2)."""


class AuthorizationError(PDAgentError):
    """Gateway rejected the PI's unique dispatch key."""


class ResultNotReadyError(PDAgentError):
    """Result document not yet available at the gateway (§3.3)."""


class GatewayError(PDAgentError):
    """Gateway-side processing failure surfaced to the device."""


class NoGatewayAvailableError(PDAgentError):
    """Gateway selection found no reachable gateway (§3.5)."""
