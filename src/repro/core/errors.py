"""PDAgent platform exceptions."""

from __future__ import annotations

__all__ = [
    "PDAgentError",
    "SubscriptionError",
    "DeploymentError",
    "DeadlineExpiredError",
    "AuthorizationError",
    "ResultNotReadyError",
    "ResultExpiredError",
    "GatewayError",
    "GatewayOverloadedError",
    "NoGatewayAvailableError",
]


class PDAgentError(Exception):
    """Base class for platform failures."""


class SubscriptionError(PDAgentError):
    """Service code download/registration failed (§3.1)."""


class DeploymentError(PDAgentError):
    """Packed Information upload or agent creation failed (§3.2)."""


class DeadlineExpiredError(DeploymentError):
    """The PI carried a task deadline that passed before dispatch.

    Deadline-critical tasks (auction sniping) declare their useful-life
    bound inside the PI; a gateway must never mint a ticket for a task
    whose deadline already passed — not even when the frame sat out an
    admission shed's Retry-After wait.  Deterministic (the deadline will
    not un-expire), so the device neither retries nor fails over.
    """


class AuthorizationError(PDAgentError):
    """Gateway rejected the PI's unique dispatch key."""


class ResultNotReadyError(PDAgentError):
    """Result document not yet available at the gateway (§3.3).

    When the gateway can see the dispatched agent's itinerary cursor, its
    204 answer carries hop progress and the exception exposes it as
    ``hops_visited`` / ``hops_remaining`` (both ``None`` otherwise); the
    device poll loop stretches its next wait by the remaining hop count
    instead of hammering a gateway whose agent is mid-tour.
    """

    def __init__(
        self,
        message: str = "",
        hops_visited: "int | None" = None,
        hops_remaining: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.hops_visited = hops_visited
        self.hops_remaining = hops_remaining


class GatewayError(PDAgentError):
    """Gateway-side processing failure surfaced to the device."""


class ResultExpiredError(GatewayError):
    """The result document existed but passed its retention TTL (HTTP 410).

    Distinct from an unknown ticket (404): the task *did* run and its
    document *was* downloadable; the device simply came back too late.
    Re-deploying is pointless if the result was already collected once.
    """


class GatewayOverloadedError(GatewayError):
    """Deliberate load shed (HTTP 503 + Retry-After), not a fault.

    Carries the server's ``retry_after`` hint in seconds.  Devices treat
    this as "come back later" — it is retried after the advertised delay
    and must NOT trip the circuit breaker, because a shedding gateway is
    healthy by definition.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class NoGatewayAvailableError(PDAgentError):
    """Gateway selection found no reachable gateway (§3.5)."""
