"""§3.4 information security model, device and gateway halves.

Protocol (paper Fig. 7):

1. device encrypts the user's information with the gateway's **public key**
   and wraps it as Packed Information;
2. gateway uses **MD5** to verify the received PI is valid;
3. gateway extracts code + requirements with its **private key**.

:class:`DeviceSecurity` performs step 1; :class:`GatewaySecurity` steps 2–3.
When encryption is disabled (ablation A3) the payload travels as
``md5_tag || payload`` — integrity only, which keeps step 2 meaningful.
"""

from __future__ import annotations

from typing import Callable

from ..crypto import (
    IntegrityError,
    KeyRing,
    PrivateKey,
    md5,
    new_session,
    open_envelope,
    seal_with_session,
)
from .config import PDAgentConfig

__all__ = ["DeviceSecurity", "GatewaySecurity", "PLAIN_MAGIC"]

PLAIN_MAGIC = b"PDP1"  # plain (integrity-only) frame marker


class DeviceSecurity:
    """Device-side sealing of outbound Packed Information."""

    def __init__(
        self,
        config: PDAgentConfig,
        keyring: KeyRing,
        rng_bytes: Callable[[int], bytes],
    ) -> None:
        self.config = config
        self.keyring = keyring
        self._rng_bytes = rng_bytes
        # One EnvelopeSession per (gateway, public key): repeat uploads to
        # the same gateway reuse the RSA work; a key rotation (new public
        # key for the address) naturally misses and re-keys.
        self._sessions: dict = {}

    def protect(self, payload: bytes, gateway: str) -> bytes:
        """Seal ``payload`` for ``gateway`` (or tag it when encryption is off)."""
        if self.config.encrypt:
            public_key = self.keyring.get(gateway)
            session = self._sessions.get((gateway, public_key))
            if session is None:
                session = new_session(public_key, self._rng_bytes)
                self._sessions[(gateway, public_key)] = session
            return seal_with_session(payload, session)
        return PLAIN_MAGIC + md5(payload) + payload

    def unprotect_result(self, frame: bytes) -> bytes:
        """Verify a result document downloaded from a gateway.

        Results travel integrity-tagged (the gateway has no device public
        key to encrypt to — devices hold no keypairs in the paper's model).
        """
        return _open_plain(frame)


class GatewaySecurity:
    """Gateway-side verification and decryption of inbound PI."""

    # Keep at most this many recovered session keys (≈ one per active
    # device); FIFO eviction bounds memory at population scale.
    _SESSION_CACHE_MAX = 8192

    def __init__(self, config: PDAgentConfig, private_key: PrivateKey) -> None:
        self.config = config
        self.private_key = private_key
        self._session_cache: dict[bytes, bytes] = {}

    def unprotect(self, frame: bytes) -> bytes:
        """Verify (MD5) then decrypt an inbound PI frame.

        Accepts both sealed and plain frames, so a mixed deployment (some
        devices with encryption disabled) still interoperates.  Session keys
        recovered from verified envelopes are cached so a device reusing its
        envelope session costs one CRT decryption, not one per upload.
        """
        if frame[:4] == PLAIN_MAGIC:
            return _open_plain(frame)
        payload = open_envelope(frame, self.private_key, self._session_cache)
        while len(self._session_cache) > self._SESSION_CACHE_MAX:
            self._session_cache.pop(next(iter(self._session_cache)))
        return payload

    def protect_result(self, payload: bytes) -> bytes:
        """Integrity-tag an outbound result document."""
        return PLAIN_MAGIC + md5(payload) + payload


def _open_plain(frame: bytes) -> bytes:
    if len(frame) < 20 or frame[:4] != PLAIN_MAGIC:
        raise IntegrityError("not a plain PDAgent frame")
    tag, payload = frame[4:20], frame[20:]
    if md5(payload) != tag:
        raise IntegrityError("MD5 verification failed")
    return payload
