"""Fleet tier: consistent-hash task ownership, membership lifecycle, claims.

A deployment's gateways form a *fleet*: every ``task_id`` has exactly one
owner gateway, chosen on a consistent-hash ring (md5 virtual nodes — stable
across processes, deterministic, and insensitive to membership order).
The owner's dedup index is authoritative for that task fleet-wide.

Membership is **epoch-versioned** (:class:`MembershipView`): members move
through ``joining → active → draining/down → active`` and every transition
that changes the ownership ring bumps a monotonic epoch.  Claims carry the
claimant's epoch; an owner answering under a different epoch replies
``stale`` with its current view instead of a verdict computed on a ring the
claimant no longer shares.  A deterministic heartbeat-based failure
detector (suspicion probes on the sim clock) marks silent members ``down``;
a recovered member rejoins at a new epoch.

Dispatch protocol (mint-first):

1. The receiving gateway mints its prospective ticket locally (binding its
   own dedup index, exactly as in the single-gateway path).
2. If it is not the owner, it sends ``POST /fleet/claim`` to the owner:
   *"bind this task to this ticket unless you already know a different
   one."*  The owner's answer is atomic (a plain, non-yielding handler).
3. ``granted`` → dispatch proceeds; the owner now redirects any retry of
   the task — arriving at *any* gateway — to this ticket.
   ``bound`` → some other gateway won the task earlier; the local
   prospective ticket is superseded and the winner's ticket is returned to
   the device, so a roaming retry never launches a second agent.
4. A claim that cannot reach the owner (bounded retries, per-round
   timeouts, and a forwarding circuit breaker — re-checked every round —
   so a dead owner is not re-probed on every upload) falls to **hinted
   handoff**: the owner's ring successor arbitrates on its behalf and
   replays the binding when the owner answers heartbeats again.  Only when
   the standby is unreachable too does the claim degrade to blind local
   accept; either way a background reconciler re-claims until the owner
   answers, superseding the local ticket if the owner meanwhile knows a
   different winner.

The claim RPC is never interrupted on timeout: the in-flight request is
left to finish in the background (the owner's bind is idempotent — a late
``granted`` simply confirms the ticket the forwarder already holds), which
keeps the race window free of connection-teardown complexity.
"""

from __future__ import annotations

import hashlib
from bisect import bisect
from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..simnet.http import request as http_request
from ..simnet.transport import NoRouteError, TransportError
from ..xmlcodec import Element, parse_bytes, write_bytes
from .retry import CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover
    from .gateway import Gateway

__all__ = [
    "HashRing",
    "MembershipView",
    "Fleet",
    "FleetClient",
    "MEMBER_STATES",
    "FLEET_CLAIM_PATH",
    "FLEET_RELEASE_PATH",
    "FLEET_HEARTBEAT_PATH",
    "FLEET_MIGRATE_PATH",
]

FLEET_CLAIM_PATH = "/fleet/claim"
FLEET_RELEASE_PATH = "/fleet/release"
FLEET_HEARTBEAT_PATH = "/fleet/heartbeat"
FLEET_MIGRATE_PATH = "/fleet/migrate"

#: Member lifecycle states.  ``joining`` members are known but not yet on
#: the ring; ``draining`` members are leaving gracefully (out of the ring,
#: still answering); ``down`` members failed the suspicion probe.
MEMBER_STATES = ("joining", "active", "draining", "down")


def _hash(key: str) -> int:
    """64-bit ring position; md5 keeps it stable across runs and machines."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over gateway addresses with virtual nodes."""

    def __init__(self, members: list[str] | tuple[str, ...], replicas: int = 32) -> None:
        members = tuple(sorted(set(members)))
        if not members:
            raise ValueError("hash ring needs at least one member")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.members = members
        self.replicas = replicas
        points = sorted(
            (_hash(f"{member}#{i}"), member)
            for member in members
            for i in range(replicas)
        )
        self._points = points
        self._keys = [p[0] for p in points]

    def owner(self, key: str) -> str:
        if len(self.members) == 1:
            return self.members[0]
        idx = bisect(self._keys, _hash(key)) % len(self._points)
        return self._points[idx][1]


class MembershipView:
    """Shared, epoch-versioned fleet membership with a failure detector.

    One view object is shared by reference across every gateway of a
    deployment (it models the gossip/registry plane).  The ownership ring
    is rebuilt over the ``active`` members at every epoch bump, so joins,
    drains and failures move keys with the bounded displacement the
    consistent-hash ring guarantees.

    The failure detector is pull-based and deterministic: a gateway that
    cannot reach a peer arms a suspicion probe (``/fleet/heartbeat`` on the
    sim clock); a member silent past the suspicion timeout is marked
    ``down`` and a heartbeat from a ``down`` member rejoins it at a new
    epoch — recovery is indistinguishable from a fresh join.
    """

    def __init__(self, members: list[str] | tuple[str, ...], replicas: int = 32) -> None:
        ordered = tuple(sorted(set(members)))
        if not ordered:
            raise ValueError("membership view needs at least one member")
        self.replicas = replicas
        self._states: dict[str, str] = {m: "active" for m in ordered}
        self.epoch = 1
        #: Every epoch bump, oldest first: ``(epoch, reason, member)``.
        #: ``reason`` is one of ``bootstrap | join | drain | down``.
        self.epoch_log: list[tuple[int, str, str]] = [(1, "bootstrap", "")]
        #: Completed graceful drains: ``(member, epoch_at_completion)``.
        self.drains_completed: list[tuple[str, int]] = []
        self._listeners: list[Callable[[int, str, str], None]] = []
        self._last_heartbeat: dict[str, float] = {}
        self._ring_cache: dict[tuple[str, ...], HashRing] = {}
        self._ring = self._ring_for(ordered)

    # ------------------------------------------------------------ membership
    @property
    def members(self) -> tuple[str, ...]:
        """Every known member, whatever its state."""
        return tuple(sorted(self._states))

    @property
    def active_members(self) -> tuple[str, ...]:
        return tuple(
            m for m in sorted(self._states) if self._states[m] == "active"
        )

    def state(self, member: str) -> str:
        return self._states.get(member, "")

    @property
    def states(self) -> dict[str, str]:
        return dict(self._states)

    # ------------------------------------------------------------ ownership
    def owner(self, key: str) -> str:
        return self._ring.owner(key)

    def owner_excluding(self, key: str, member: str) -> str:
        """Ring owner of ``key`` with ``member`` removed — the hinted-handoff
        standby while ``member`` is suspected but not yet marked down."""
        candidates = tuple(m for m in self._ring.members if m != member)
        if not candidates:
            return ""
        return self._ring_for(candidates).owner(key)

    def successor(self, member: str) -> str:
        """The next *active* member after ``member`` in address order.

        The drain protocol's single deterministic handoff target: state that
        cannot be routed by task key (tickets are found by their id's origin
        prefix) migrates here, and collects against a non-active origin are
        relayed here.  ``""`` when no other member is active.
        """
        ordered = [
            m
            for m in sorted(self._states)
            if m != member and self._states[m] == "active"
        ]
        if not ordered:
            return ""
        for candidate in ordered:
            if candidate > member:
                return candidate
        return ordered[0]

    def _ring_for(self, members: tuple[str, ...]) -> HashRing:
        ring = self._ring_cache.get(members)
        if ring is None:
            ring = HashRing(members, replicas=self.replicas)
            self._ring_cache[members] = ring
        return ring

    def _ring_members(self) -> tuple[str, ...]:
        active = self.active_members
        if active:
            return active
        # Degenerate fleets (everything draining/down at once) keep the
        # least-bad ring instead of none: better a suspect owner than no
        # ownership map at all.
        not_down = tuple(
            m for m in sorted(self._states) if self._states[m] != "down"
        )
        return not_down or self.members

    # ------------------------------------------------------------ transitions
    def add_listener(self, fn: Callable[[int, str, str], None]) -> None:
        """``fn(epoch, reason, member)`` runs synchronously per epoch bump."""
        self._listeners.append(fn)

    def _bump(self, reason: str, member: str) -> None:
        self.epoch += 1
        self._ring = self._ring_for(self._ring_members())
        self.epoch_log.append((self.epoch, reason, member))
        for fn in list(self._listeners):
            fn(self.epoch, reason, member)

    def join(self, member: str) -> None:
        """Announce a new member; it stays off the ring until activated."""
        if self._states.get(member) == "active":
            return
        self._states[member] = "joining"

    def activate(self, member: str) -> None:
        """Put a joining (or recovered) member on the ring at a new epoch."""
        if self._states.get(member) == "active":
            return
        self._states[member] = "active"
        self._bump("join", member)

    # A recovered member's activate and a fresh join are the same ring event.
    rejoin = activate

    def begin_drain(self, member: str) -> None:
        """Start a graceful departure: off the ring, still answering."""
        if self._states.get(member) in (None, "draining", "down"):
            return
        self._states[member] = "draining"
        self._bump("drain", member)

    def finish_drain(self, member: str) -> None:
        """Record that ``member`` finished migrating its owned state."""
        self.drains_completed.append((member, self.epoch))

    def mark_down(self, member: str) -> None:
        """Failure detector verdict: ``member`` is silent past suspicion."""
        if self._states.get(member) in (None, "down"):
            return
        self._states[member] = "down"
        self._bump("down", member)

    def record_heartbeat(self, member: str, now: float) -> None:
        """A liveness proof for ``member``; rejoins it if marked down."""
        if member not in self._states:
            return
        self._last_heartbeat[member] = now
        if self._states[member] == "down":
            self.rejoin(member)

    def last_heartbeat(self, member: str) -> Optional[float]:
        return self._last_heartbeat.get(member)


class Fleet:
    """Shared fleet membership + ownership map (epoch-versioned)."""

    def __init__(self, members: list[str] | tuple[str, ...], replicas: int = 32) -> None:
        self.view = MembershipView(members, replicas=replicas)

    @property
    def ring(self) -> HashRing:
        return self.view._ring

    @property
    def members(self) -> tuple[str, ...]:
        return self.view.members

    @property
    def epoch(self) -> int:
        return self.view.epoch

    def owner(self, task_id: str) -> str:
        return self.view.owner(task_id)

    def __contains__(self, address: str) -> bool:
        return address in self.view._states

    def __len__(self) -> int:
        return len(self.view._states)


# ------------------------------------------------------------------ wire XML
def claim_request(
    task_id: str,
    ticket_id: str,
    claimant: str,
    epoch: int = 0,
    on_behalf_of: str = "",
) -> bytes:
    attrs = {"task": task_id, "ticket": ticket_id, "from": claimant}
    if epoch:
        attrs["epoch"] = str(epoch)
    if on_behalf_of:
        attrs["for"] = on_behalf_of
    return write_bytes(Element("claim", attrs))


def claim_reply(
    verdict: str,
    ticket_id: str,
    agent_id: str = "",
    epoch: int = 0,
    owner: str = "",
) -> bytes:
    attrs = {"verdict": verdict}
    if epoch:
        attrs["epoch"] = str(epoch)
    doc = Element("claimreply", attrs)
    doc.add("ticket", text=ticket_id)
    doc.add("agent", text=agent_id)
    if owner:
        doc.add("owner", text=owner)
    return write_bytes(doc)


def release_request(task_id: str, ticket_id: str) -> bytes:
    doc = Element("release", {"task": task_id, "ticket": ticket_id})
    return write_bytes(doc)


def heartbeat_request(sender: str, epoch: int) -> bytes:
    doc = Element("heartbeat", {"from": sender, "epoch": str(epoch)})
    return write_bytes(doc)


class FleetClient:
    """One gateway's forwarding side of the fleet protocol."""

    def __init__(self, gateway: "Gateway", fleet: Fleet) -> None:
        self.gateway = gateway
        self.fleet = fleet
        config = gateway.config
        self.breaker = CircuitBreaker(
            gateway.sim,
            threshold=config.fleet_breaker_threshold,
            cooldown=config.fleet_breaker_cooldown_s,
        )

    def owner_of(self, task_id: str) -> str:
        return self.fleet.owner(task_id)

    # ------------------------------------------------------------ claim RPC
    def claim(
        self, task_id: str, ticket_id: str
    ) -> Generator[object, object, tuple[str, str, str]]:
        """Process: claim ``task_id`` for ``ticket_id`` at its owner.

        Returns ``(verdict, winner_ticket, winner_agent)`` where verdict is
        one of ``"local"`` (this gateway owns the task — its own dedup index
        is already authoritative), ``"granted"``, ``"bound"`` (the owner
        knows a different winning ticket), ``"handoff"`` (the owner is
        unreachable; its ring successor accepted the claim on its behalf and
        will replay it — reconcile in the background), or ``"unreachable"``
        (standby unreachable too: degrade to local accept and reconcile).

        The owner and the circuit breaker are re-resolved **every round**:
        an epoch change mid-claim retargets the next round, and a breaker
        that opens mid-loop stops the probing immediately instead of
        burning the remaining rounds against a dead owner.
        """
        gw = self.gateway
        tracer = gw.network.tracer
        owner = self.fleet.owner(task_id)
        for _attempt in range(gw.config.fleet_claim_attempts):
            owner = self.fleet.owner(task_id)
            if owner == gw.address:
                return ("local", "", "")
            if self.breaker.is_open(owner):
                tracer.count("fleet.claim_skipped_breaker_open")
                break
            outcome = yield from self.claim_at(owner, task_id, ticket_id)
            if outcome is None:
                continue
            verdict, winner, agent = outcome
            if verdict == "stale":
                # The owner answered under a different epoch: the shared
                # view has already moved, so the next round re-resolves
                # ownership instead of trusting a wrong verdict.
                tracer.count("fleet.claim_stale_epoch")
                continue
            if verdict == "bound" and winner != ticket_id:
                tracer.count("fleet.claim_bound")
                return ("bound", winner, agent)
            # "granted", or "bound" to our own ticket (our earlier timed-out
            # claim landed after all): either way the task is ours.
            tracer.count("fleet.claim_granted")
            return ("granted", "", "")
        if owner == gw.address:
            return ("local", "", "")
        handed = yield from self._handoff(task_id, ticket_id, owner)
        if handed is not None:
            return handed
        return ("unreachable", "", "")

    def claim_at(
        self,
        target: str,
        task_id: str,
        ticket_id: str,
        on_behalf_of: str = "",
    ) -> Generator[object, object, Optional[tuple[str, str, str]]]:
        """Process: one epoch-tagged claim round against ``target``.

        Returns ``(verdict, winner_ticket, winner_agent)`` or ``None`` when
        the round failed (timeout/transport); failures feed the breaker and
        arm the suspicion probe.  Shared by the claim loop, the hinted
        handoff, and hint replay.
        """
        gw = self.gateway
        sim = gw.sim
        view = self.fleet.view
        body = claim_request(
            task_id,
            ticket_id,
            gw.address,
            epoch=view.epoch,
            on_behalf_of=on_behalf_of,
        )
        rpc = sim.process(
            self._rpc(target, FLEET_CLAIM_PATH, body, purpose="fleet-claim"),
            name=f"fleet-claim:{ticket_id}",
        )
        deadline = sim.timeout(gw.config.fleet_claim_timeout_s)
        fired = yield sim.any_of([rpc, deadline])
        if rpc not in fired:
            # Timed out.  The RPC is left running: the owner's bind is
            # idempotent, so a late grant is harmless.
            self.breaker.record_failure(target)
            gw.network.tracer.count("fleet.claim_timeout")
            gw._suspect_member(target)
            return None
        ok, payload = fired[rpc]
        if not ok:
            self.breaker.record_failure(target)
            gw.network.tracer.count("fleet.claim_error")
            gw._suspect_member(target)
            return None
        self.breaker.record_success(target)
        view.record_heartbeat(target, sim.now)
        verdict = payload.get("verdict", "")
        return (verdict, payload.findtext("ticket"), payload.findtext("agent"))

    def _handoff(
        self, task_id: str, ticket_id: str, owner: str
    ) -> Generator[object, object, Optional[tuple[str, str, str]]]:
        """Process: claim at the owner's ring standby while it is suspect."""
        gw = self.gateway
        view = self.fleet.view
        standby = view.owner_excluding(task_id, owner)
        if not standby or standby == owner:
            return None
        if standby == gw.address:
            # This gateway *is* the standby: its own dedup (bound at mint)
            # arbitrates, and it remembers the hint for the owner's return.
            gw._record_handoff_hint(task_id, ticket_id, owner)
            gw.network.tracer.count("fleet.handoff_local")
            return ("handoff", "", "")
        if self.breaker.is_open(standby):
            return None
        outcome = yield from self.claim_at(
            standby, task_id, ticket_id, on_behalf_of=owner
        )
        if outcome is None:
            return None
        verdict, winner, agent = outcome
        if verdict == "bound" and winner != ticket_id:
            gw.network.tracer.count("fleet.handoff_bound")
            return ("bound", winner, agent)
        if verdict == "granted":
            gw.network.tracer.count("fleet.handoff_granted")
            return ("handoff", "", "")
        return None

    def release(self, task_id: str, ticket_id: str) -> Generator:
        """Process: unbind at the owner (failed dispatch path).

        Bounded retries with a deterministic pause; exhaustion is counted
        (``fleet.release_failed``) — the binding then lingers until its TTL
        instead of silently forever, and operators can see it happened.
        """
        gw = self.gateway
        body = release_request(task_id, ticket_id)
        attempts = gw.config.fleet_release_attempts
        for attempt in range(attempts):
            # Re-resolve per attempt: an epoch change may have moved the
            # task home (nothing to release) or to a reachable owner.
            owner = self.fleet.owner(task_id)
            if owner == gw.address:
                return
            ok, _ = yield from self._rpc(
                owner, FLEET_RELEASE_PATH, body, purpose="fleet-release"
            )
            if ok:
                if attempt:
                    gw.network.tracer.count("fleet.release_recovered")
                return
            if attempt + 1 < attempts:
                yield gw.sim.timeout(gw.config.fleet_release_retry_s)
        gw.network.tracer.count("fleet.release_failed")

    def _rpc(
        self, owner: str, path: str, body: bytes, purpose: str
    ) -> Generator[object, object, tuple[bool, object]]:
        """One intra-fleet POST; never raises (safe under ``any_of``)."""
        gw = self.gateway
        try:
            resp = yield from http_request(
                gw.network,
                gw.address,
                owner,
                "POST",
                path,
                body=body,
                body_size=len(body),
                port=gw.http.port,
                purpose=purpose,
                raise_for_status=False,
            )
        except (TransportError, NoRouteError) as exc:
            return (False, str(exc))
        if not resp.ok:
            return (False, f"{resp.status} {resp.reason}")
        try:
            return (True, parse_bytes(resp.body))
        except Exception as exc:  # noqa: BLE001 - malformed peer reply
            return (False, f"bad reply: {exc}")
