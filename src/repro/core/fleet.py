"""Fleet tier: consistent-hash task ownership and claim forwarding.

A deployment's gateways form a *fleet*: every ``task_id`` has exactly one
owner gateway, chosen on a consistent-hash ring (md5 virtual nodes — stable
across processes, deterministic, and insensitive to membership order).
The owner's dedup index is authoritative for that task fleet-wide.

Dispatch protocol (mint-first):

1. The receiving gateway mints its prospective ticket locally (binding its
   own dedup index, exactly as in the single-gateway path).
2. If it is not the owner, it sends ``POST /fleet/claim`` to the owner:
   *"bind this task to this ticket unless you already know a different
   one."*  The owner's answer is atomic (a plain, non-yielding handler).
3. ``granted`` → dispatch proceeds; the owner now redirects any retry of
   the task — arriving at *any* gateway — to this ticket.
   ``bound`` → some other gateway won the task earlier; the local
   prospective ticket is superseded and the winner's ticket is returned to
   the device, so a roaming retry never launches a second agent.
4. A claim that cannot reach the owner (bounded retries, per-round
   timeouts, and a forwarding circuit breaker so a dead owner is not
   re-probed on every upload) degrades to **local accept**: the dispatch
   proceeds — devices are never hung on an intra-fleet RPC — and a
   background reconciler re-claims until the owner answers, superseding
   the local ticket if the owner meanwhile knows a different winner.

The claim RPC is never interrupted on timeout: the in-flight request is
left to finish in the background (the owner's bind is idempotent — a late
``granted`` simply confirms the ticket the forwarder already holds), which
keeps the race window free of connection-teardown complexity.
"""

from __future__ import annotations

import hashlib
from bisect import bisect
from typing import TYPE_CHECKING, Generator, Optional

from ..simnet.http import request as http_request
from ..simnet.transport import NoRouteError, TransportError
from ..xmlcodec import Element, parse_bytes, write_bytes
from .retry import CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover
    from .gateway import Gateway

__all__ = ["HashRing", "Fleet", "FleetClient", "FLEET_CLAIM_PATH", "FLEET_RELEASE_PATH"]

FLEET_CLAIM_PATH = "/fleet/claim"
FLEET_RELEASE_PATH = "/fleet/release"


def _hash(key: str) -> int:
    """64-bit ring position; md5 keeps it stable across runs and machines."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over gateway addresses with virtual nodes."""

    def __init__(self, members: list[str] | tuple[str, ...], replicas: int = 32) -> None:
        members = tuple(sorted(set(members)))
        if not members:
            raise ValueError("hash ring needs at least one member")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.members = members
        self.replicas = replicas
        points = sorted(
            (_hash(f"{member}#{i}"), member)
            for member in members
            for i in range(replicas)
        )
        self._points = points
        self._keys = [p[0] for p in points]

    def owner(self, key: str) -> str:
        if len(self.members) == 1:
            return self.members[0]
        idx = bisect(self._keys, _hash(key)) % len(self._points)
        return self._points[idx][1]


class Fleet:
    """Shared, immutable fleet membership + ownership map."""

    def __init__(self, members: list[str] | tuple[str, ...], replicas: int = 32) -> None:
        self.ring = HashRing(members, replicas=replicas)

    @property
    def members(self) -> tuple[str, ...]:
        return self.ring.members

    def owner(self, task_id: str) -> str:
        return self.ring.owner(task_id)

    def __contains__(self, address: str) -> bool:
        return address in self.ring.members

    def __len__(self) -> int:
        return len(self.ring.members)


# ------------------------------------------------------------------ wire XML
def claim_request(task_id: str, ticket_id: str, claimant: str) -> bytes:
    doc = Element(
        "claim", {"task": task_id, "ticket": ticket_id, "from": claimant}
    )
    return write_bytes(doc)


def claim_reply(verdict: str, ticket_id: str, agent_id: str = "") -> bytes:
    doc = Element("claimreply", {"verdict": verdict})
    doc.add("ticket", text=ticket_id)
    doc.add("agent", text=agent_id)
    return write_bytes(doc)


def release_request(task_id: str, ticket_id: str) -> bytes:
    doc = Element("release", {"task": task_id, "ticket": ticket_id})
    return write_bytes(doc)


class FleetClient:
    """One gateway's forwarding side of the fleet protocol."""

    def __init__(self, gateway: "Gateway", fleet: Fleet) -> None:
        self.gateway = gateway
        self.fleet = fleet
        config = gateway.config
        self.breaker = CircuitBreaker(
            gateway.sim,
            threshold=config.fleet_breaker_threshold,
            cooldown=config.fleet_breaker_cooldown_s,
        )

    def owner_of(self, task_id: str) -> str:
        return self.fleet.owner(task_id)

    # ------------------------------------------------------------ claim RPC
    def claim(
        self, task_id: str, ticket_id: str
    ) -> Generator[object, object, tuple[str, str, str]]:
        """Process: claim ``task_id`` for ``ticket_id`` at its owner.

        Returns ``(verdict, winner_ticket, winner_agent)`` where verdict is
        one of ``"local"`` (this gateway owns the task — its own dedup index
        is already authoritative), ``"granted"``, ``"bound"`` (the owner
        knows a different winning ticket), or ``"unreachable"`` (degrade to
        local accept and reconcile later).
        """
        gw = self.gateway
        owner = self.fleet.owner(task_id)
        if owner == gw.address:
            return ("local", "", "")
        if self.breaker.is_open(owner):
            gw.network.tracer.count("fleet.claim_skipped_breaker_open")
            return ("unreachable", "", "")
        sim = gw.sim
        body = claim_request(task_id, ticket_id, gw.address)
        for _attempt in range(gw.config.fleet_claim_attempts):
            rpc = sim.process(
                self._rpc(owner, FLEET_CLAIM_PATH, body, purpose="fleet-claim"),
                name=f"fleet-claim:{ticket_id}",
            )
            deadline = sim.timeout(gw.config.fleet_claim_timeout_s)
            fired = yield sim.any_of([rpc, deadline])
            if rpc not in fired:
                # Timed out.  The RPC is left running: the owner's bind is
                # idempotent, so a late grant is harmless.
                self.breaker.record_failure(owner)
                gw.network.tracer.count("fleet.claim_timeout")
                continue
            ok, payload = fired[rpc]
            if not ok:
                self.breaker.record_failure(owner)
                gw.network.tracer.count("fleet.claim_error")
                continue
            self.breaker.record_success(owner)
            verdict = payload.get("verdict", "")
            winner = payload.findtext("ticket")
            agent = payload.findtext("agent")
            if verdict == "bound" and winner != ticket_id:
                gw.network.tracer.count("fleet.claim_bound")
                return ("bound", winner, agent)
            # "granted", or "bound" to our own ticket (our earlier timed-out
            # claim landed after all): either way the task is ours.
            gw.network.tracer.count("fleet.claim_granted")
            return ("granted", "", "")
        return ("unreachable", "", "")

    def release(self, task_id: str, ticket_id: str) -> Generator:
        """Process: best-effort unbind at the owner (failed dispatch path)."""
        owner = self.fleet.owner(task_id)
        if owner == self.gateway.address:
            return
        yield from self._rpc(
            owner,
            FLEET_RELEASE_PATH,
            release_request(task_id, ticket_id),
            purpose="fleet-release",
        )

    def _rpc(
        self, owner: str, path: str, body: bytes, purpose: str
    ) -> Generator[object, object, tuple[bool, object]]:
        """One intra-fleet POST; never raises (safe under ``any_of``)."""
        gw = self.gateway
        try:
            resp = yield from http_request(
                gw.network,
                gw.address,
                owner,
                "POST",
                path,
                body=body,
                body_size=len(body),
                port=gw.http.port,
                purpose=purpose,
                raise_for_status=False,
            )
        except (TransportError, NoRouteError) as exc:
            return (False, str(exc))
        if not resp.ok:
            return (False, f"{resp.status} {resp.reason}")
        try:
            return (True, parse_bytes(resp.body))
        except Exception as exc:  # noqa: BLE001 - malformed peer reply
            return (False, f"bad reply: {exc}")
