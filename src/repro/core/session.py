"""Streaming sessions: resumable uploads, partial results, reconnect push.

The store-and-forward contract of §3.2/§3.3 makes a weak wireless link pay
twice: a PI upload that dies mid-transfer restarts from byte 0, and the
device sees *nothing* of a multi-site itinerary until the whole tour is
finished.  This module adds a **session** between device and gateway with
three capabilities (cf. DIAMOnDS' live service streams and the handheld
grid-analysis system's incremental result push):

* **Chunked resumable upload** — the device splits the packed PI frame
  into chunks; the gateway persists received ranges in the
  :class:`~repro.core.storage.InMemorySessionStore` /
  :class:`~repro.core.storage.SqliteSessionStore` behind the storage
  adapter, and a resume handshake (keyed by the task id) answers the first
  unacknowledged offset, so a LinkDown costs only the bytes in flight.
  The chunk that completes coverage assembles the frame, verifies its MD5
  digest, and hands it to the **existing** dedup/admission intake path
  (:meth:`~repro.core.gateway.Gateway._intake_frame`) — exactly-once is
  inherited, not re-implemented.
* **Partial-result streaming** — each itinerary hop reports its per-site
  result home (``POST /session/partial``); the gateway appends it to the
  ticket's result stream and a device poll drains everything past the
  device's cursor, so the first-hop answer arrives in ~one RTT.  The
  final document download is untouched (byte-identical to today's).
* **Reconnect-window push** — result-ready and service-updated events are
  queued per open session and flushed on the next poll, replacing blind
  fixed-interval polling.

Session messages run under their own admission class (``"session"``) so a
chunk flood can never starve result downloads.

Wire protocol (all under the ``/session/`` route prefix)::

    POST /session/open            <sessionopen device task total digest>
      -> <sessionopened id next epoch [ticket agent]>
    PUT  /session/chunk/<sid>     raw chunk bytes + x-chunk-offset header
      -> <sessionchunk next complete [ticket agent]>   (x-next-offset)
    GET  /session/poll/<sid>      x-partial-cursor header
      -> <sessionpoll cursor epoch ready> <partial/>* <event/>*
    POST /session/close/<sid>     -> 200
    POST /session/partial         <hopreport agent site>payload   (from MAS)

Crash semantics follow the storage adapter: under the memory backend an
open session dies with the gateway (the device's re-open starts from byte
0); under sqlite the received ranges survive and the resume handshake
picks up where the crash left off.  Poll responses carry the gateway's
``crash_epoch`` so a device can detect a restart and reset its partial
cursor — the gateway's partial stream for a ticket is authoritative and
the device's accumulated list must stay a prefix of it.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from ..crypto import md5_hex
from ..simnet.http import HttpRequest, HttpResponse
from ..telemetry.spans import SpanContext
from ..xmlcodec import Element, XmlError, parse_bytes, write_bytes
from .storage import SessionRecord

if TYPE_CHECKING:  # pragma: no cover
    from .gateway import Gateway, Ticket

__all__ = [
    "SessionManager",
    "SESSION_ID_HEADER",
    "CHUNK_OFFSET_HEADER",
    "NEXT_OFFSET_HEADER",
    "PARTIAL_CURSOR_HEADER",
    "STREAM_EPOCH_HEADER",
    "RESULT_READY_HEADER",
    "HOPS_VISITED_HEADER",
    "HOPS_REMAINING_HEADER",
]

#: Session id minted by the gateway at open, echoed in the chunk/poll path.
SESSION_ID_HEADER = "x-session-id"
#: Byte offset of the chunk carried in a ``PUT /session/chunk`` body.
CHUNK_OFFSET_HEADER = "x-chunk-offset"
#: First unacknowledged byte — what the device should send next.
NEXT_OFFSET_HEADER = "x-next-offset"
#: Device's partial-result cursor (count of partials already consumed).
PARTIAL_CURSOR_HEADER = "x-partial-cursor"
#: Gateway crash epoch; a change tells the device to reset its cursor.
STREAM_EPOCH_HEADER = "x-stream-epoch"
#: "1" on a poll response when the final result document is downloadable.
RESULT_READY_HEADER = "x-result-ready"
#: Hop progress on a 204 "result not ready": sites already visited …
HOPS_VISITED_HEADER = "x-hops-visited"
#: … and sites still ahead of the agent (adaptive-poll hint).
HOPS_REMAINING_HEADER = "x-hops-remaining"


class SessionManager:
    """Gateway-side session state machine.

    Owns no HTTP routes itself — :class:`~repro.core.gateway.Gateway`
    registers ``/session/`` and dispatches here under a held ``"session"``
    admission slot.  Durable state (records, received ranges, partial
    streams) lives in ``gateway.storage.sessions``; the push queues are
    process memory, lost on crash like any other servlet-session state.
    """

    def __init__(self, gateway: "Gateway") -> None:
        self.gateway = gateway
        self._counter = itertools.count(
            self.store.max_seq(f"{gateway.address}/s-") + 1
        )
        #: Per-session queued notifications (dicts), flushed on next poll.
        self._push: dict[str, list[dict]] = {}

    # ------------------------------------------------------------ plumbing
    @property
    def store(self):
        return self.gateway.storage.sessions

    @property
    def sim(self):
        return self.gateway.sim

    @property
    def tracer(self):
        return self.gateway.network.tracer

    def open_sessions(self) -> list[SessionRecord]:
        """Live session records (leak audits and experiments)."""
        return self.store.values()

    def on_crash(self) -> None:
        """Process memory dies with the gateway; durable ranges survive."""
        self._push.clear()

    # ------------------------------------------------------------ internals
    def _prefix(self, session_id: str) -> int:
        """Contiguous byte coverage from offset 0 — the resume point."""
        chunks = self.store.chunks(session_id)
        prefix = 0
        while prefix in chunks:
            prefix += len(chunks[prefix])
        return prefix

    def _touch(self, record: SessionRecord) -> None:
        record.last_contact = self.sim.now
        self.store.persist(record)

    def _reap(self) -> None:
        """Lazily expire idle sessions (no background process: a reaper
        firing at quiescence would never let the swarm drain)."""
        ttl = self.gateway.config.session_ttl_s
        now = self.sim.now
        for record in self.store.values():
            if now - record.last_contact > ttl:
                self.store.delete(record.session_id)
                self._push.pop(record.session_id, None)
                self.tracer.count("gateway.session_expired")

    def _ticket_for_agent(self, agent_id: str) -> Optional["Ticket"]:
        for ticket in self.gateway.storage.tickets.values():
            if ticket.agent_id == agent_id:
                return ticket
        return None

    def _epoch_headers(self, extra: Optional[dict[str, str]] = None) -> dict:
        headers = {STREAM_EPOCH_HEADER: str(self.gateway.crash_epoch)}
        if extra:
            headers.update(extra)
        return headers

    # ------------------------------------------------------------ open/resume
    def handle_open(self, req: HttpRequest) -> HttpResponse:
        """``POST /session/open``: create — or resume — an upload session.

        The handshake is keyed by the device task id: a re-open after a
        LinkDown (or a gateway restart under the sqlite backend) finds the
        existing record and answers the first unacknowledged offset.  A
        task that already dispatched (the completing chunk's response was
        lost, or the session expired after commit) short-circuits to the
        existing ticket via the dedup index — the device skips the upload
        entirely.
        """
        self._reap()
        try:
            doc = parse_bytes(req.body)
            device_id = doc.require("device")
            task_id = doc.require("task")
            total = int(doc.require("total"))
            digest = doc.get("digest", "")
        except (XmlError, KeyError, ValueError, TypeError) as exc:
            return HttpResponse(400, reason=f"bad session open: {exc}")
        if total <= 0:
            return HttpResponse(400, reason="total must be positive")
        record = self.store.by_task(task_id) if task_id else None
        if (
            record is not None
            and not record.ticket_id
            and (record.total_bytes != total or record.digest != digest)
        ):
            # The device re-packed the frame for this task (a deploy retry
            # builds a fresh trace/origin into the PI), so the stale
            # partial can never assemble.  Supersede it rather than
            # trapping every chunk in a 400 against the old announced
            # size.  A committed record is never superseded — the dedup
            # short-circuit below answers the existing ticket instead.
            self.store.delete(record.session_id)
            self.tracer.count("gateway.session_superseded")
            record = None
        if record is not None:
            self._touch(record)
            next_offset = self._prefix(record.session_id)
            self.tracer.count("gateway.session_resumes")
        else:
            # Upload already done in a previous (lost/expired) session?
            existing = self.gateway._dedup_answer(task_id)
            if existing is not None:
                return self._opened_response(
                    session_id="", next_offset=total,
                    ticket_id=existing[0], agent_id=existing[1],
                )
            record = SessionRecord(
                session_id=f"{self.gateway.address}/s-{next(self._counter)}",
                device_id=device_id,
                task_id=task_id,
                total_bytes=total,
                digest=digest,
                created_at=self.sim.now,
                last_contact=self.sim.now,
            )
            self.store.create(record)
            next_offset = 0
            self.tracer.count("gateway.session_opens")
        if record.ticket_id:
            # Commit response was lost: re-answer the dispatched ticket.
            ticket = self.gateway.storage.tickets.get(record.ticket_id)
            return self._opened_response(
                session_id=record.session_id, next_offset=record.total_bytes,
                ticket_id=record.ticket_id,
                agent_id=ticket.agent_id if ticket is not None else "",
            )
        return self._opened_response(record.session_id, next_offset)

    def _opened_response(
        self,
        session_id: str,
        next_offset: int,
        ticket_id: str = "",
        agent_id: str = "",
    ) -> HttpResponse:
        doc = Element(
            "sessionopened",
            {
                "id": session_id,
                "next": str(next_offset),
                "epoch": str(self.gateway.crash_epoch),
            },
        )
        if ticket_id:
            doc.add("ticket", text=ticket_id)
            doc.add("agent", text=agent_id)
        body = write_bytes(doc)
        return HttpResponse(
            200, body=body, body_size=len(body),
            headers=self._epoch_headers({NEXT_OFFSET_HEADER: str(next_offset)}),
        )

    # ------------------------------------------------------------ chunks
    def handle_chunk(self, req: HttpRequest, session_id: str) -> Generator:
        """``PUT /session/chunk/<sid>``: accept one chunk; commit on cover.

        Accept rules (``prefix`` = contiguous stored bytes from 0):

        * ``offset == prefix`` — append (the normal case);
        * ``offset + len <= prefix`` — duplicate retransmit, acknowledged
          idempotently (the device's previous send made it but the
          response was lost);
        * ``offset < prefix < offset + len`` — overlap, trimmed to the
          novel tail;
        * ``offset > prefix`` — a gap the gateway never saw (e.g. a crash
          under the memory backend dropped the ranges): 409 with
          ``x-next-offset`` resynchronises the device.

        The chunk that completes coverage assembles the frame, verifies
        the digest, and drives the shared PI intake — the response then
        carries the dispatched ticket, saving the separate commit RTT.
        A retried final chunk finds ``record.ticket_id`` set and
        re-answers it (or, after a commit lost to a crash, dedups through
        the intake path) — exactly-once holds end to end.
        """
        self._reap()
        tele = self.gateway.network.telemetry
        record = self.store.get(session_id)
        if record is None:
            return HttpResponse(404, reason=f"unknown session {session_id!r}")
            yield  # pragma: no cover - unreachable; keeps handler a generator
        if not isinstance(req.body, (bytes, bytearray)):
            return HttpResponse(400, reason="chunk body must be bytes")
        try:
            offset = int(req.headers.get(CHUNK_OFFSET_HEADER, ""))
        except ValueError:
            return HttpResponse(400, reason=f"missing {CHUNK_OFFSET_HEADER}")
        if offset < 0 or offset + len(req.body) > record.total_bytes:
            return HttpResponse(400, reason="chunk outside the announced frame")
        self._touch(record)
        span = tele.start_span(
            "gateway.session_chunk",
            node=self.gateway.address,
            parent=SpanContext.from_headers(req.headers),
            attrs={"session": session_id, "offset": offset, "bytes": len(req.body)},
        )
        try:
            self.tracer.count("gateway.session_chunks")
            if record.ticket_id:
                # Already committed — the completing chunk's response was
                # lost and this is its retransmit.
                self.tracer.count(
                    "gateway.session_retransmitted_bytes", len(req.body)
                )
                ticket = self.gateway.storage.tickets.get(record.ticket_id)
                span.end(status="duplicate")
                return self._chunk_response(
                    record, next_offset=record.total_bytes, complete=True,
                    ticket_id=record.ticket_id,
                    agent_id=ticket.agent_id if ticket is not None else "",
                )
            prefix = self._prefix(session_id)
            data = bytes(req.body)
            if offset > prefix:
                span.end(status="gap")
                return HttpResponse(
                    409,
                    reason=f"gap: have {prefix}, got offset {offset}",
                    headers=self._epoch_headers(
                        {NEXT_OFFSET_HEADER: str(prefix)}
                    ),
                )
            if offset + len(data) <= prefix:
                # Whole chunk already covered: idempotent ack.
                self.tracer.count(
                    "gateway.session_retransmitted_bytes", len(data)
                )
                span.end(status="duplicate")
                return self._chunk_response(record, prefix, complete=False)
            if offset < prefix:
                self.tracer.count(
                    "gateway.session_retransmitted_bytes", prefix - offset
                )
                data = data[prefix - offset:]
            self.store.put_chunk(session_id, prefix, data)
            next_offset = prefix + len(data)
            if next_offset < record.total_bytes:
                span.end(next=next_offset)
                return self._chunk_response(record, next_offset, complete=False)
            resp = yield from self._commit(record, req, span)
            return resp
        finally:
            if span.open:
                span.end(status="error")

    def _commit(self, record: SessionRecord, req: HttpRequest, span) -> Generator:
        """Assemble the covered frame and drive the shared intake path."""
        chunks = self.store.chunks(record.session_id)
        frame = b"".join(chunks[off] for off in sorted(chunks))
        if record.digest and md5_hex(frame) != record.digest:
            # Corrupt reassembly (should never happen: the invariant
            # catalogue counts these).  Scrap the session; the device
            # re-opens and uploads afresh.
            self.tracer.count("gateway.session_digest_mismatch")
            self.store.delete(record.session_id)
            self._push.pop(record.session_id, None)
            span.end(status="digest-mismatch")
            return HttpResponse(422, reason="assembled frame digest mismatch")
        resp = yield from self.gateway._intake_frame(
            frame,
            task_id=record.task_id,
            trace=SpanContext.from_headers(req.headers),
        )
        if resp.status != 200:
            # Shed (503) or rejection (4xx): pass the structured answer
            # through; the device retries the final chunk (idempotent) or
            # gives up.  The session stays open for the retry.
            span.end(status=f"intake-{resp.status}")
            return resp
        doc = parse_bytes(resp.body)
        record.ticket_id = doc.require_child("ticket").text
        agent_id = doc.require_child("agent").text
        self.store.persist(record)
        self.tracer.count("gateway.session_commits")
        span.end(status="committed", ticket=record.ticket_id)
        return self._chunk_response(
            record, record.total_bytes, complete=True,
            ticket_id=record.ticket_id, agent_id=agent_id,
        )

    def _chunk_response(
        self,
        record: SessionRecord,
        next_offset: int,
        complete: bool,
        ticket_id: str = "",
        agent_id: str = "",
    ) -> HttpResponse:
        doc = Element(
            "sessionchunk",
            {"next": str(next_offset), "complete": "1" if complete else "0"},
        )
        if ticket_id:
            doc.add("ticket", text=ticket_id)
            doc.add("agent", text=agent_id)
        body = write_bytes(doc)
        return HttpResponse(
            200, body=body, body_size=len(body),
            headers=self._epoch_headers({NEXT_OFFSET_HEADER: str(next_offset)}),
        )

    # ------------------------------------------------------------ partials
    def receive_hop_report(self, req: HttpRequest) -> HttpResponse:
        """``POST /session/partial``: a MAS hop reporting its site result.

        Body is ``<hopreport agent site>serialized-value</hopreport>``;
        the payload text is the site result's XML serialization, stored
        verbatim in the ticket's partial stream and handed to the device
        as-is on poll.
        """
        try:
            doc = parse_bytes(req.body)
            agent_id = doc.require("agent")
            site = doc.require("site")
        except (XmlError, KeyError, TypeError) as exc:
            return HttpResponse(400, reason=f"bad hop report: {exc}")
        ticket = self._ticket_for_agent(agent_id)
        if ticket is None:
            # Agent unknown here (e.g. crash wiped the ticket): drop — the
            # final document is the authoritative result anyway.
            self.tracer.count("gateway.session_partials_dropped")
            return HttpResponse(404, reason=f"no ticket for agent {agent_id!r}")
        seq = len(self.store.partials(ticket.ticket_id)) + 1
        self.store.append_partial(
            ticket.ticket_id,
            {"seq": seq, "site": site, "payload": doc.text, "at": self.sim.now},
        )
        self.tracer.count("gateway.session_partials")
        self.gateway.network.telemetry.instant(
            "session.partial",
            node=self.gateway.address,
            trace=SpanContext.from_headers(req.headers),
            attrs={"ticket": ticket.ticket_id, "site": site, "seq": seq},
        )
        return HttpResponse(200, body=b"", body_size=0)

    # ------------------------------------------------------------ poll/push
    def handle_poll(self, req: HttpRequest, session_id: str) -> HttpResponse:
        """``GET /session/poll/<sid>``: drain partials + queued events.

        Returns every partial past the device's cursor
        (``x-partial-cursor``) plus all notifications queued on the
        session since the last contact.  The response's ``epoch``
        attribute is the gateway crash epoch: when it moves, the device
        resets its cursor to 0 and re-accumulates — the gateway's stream
        is authoritative and the device copy must remain a prefix of it.
        """
        self._reap()
        record = self.store.get(session_id)
        if record is None:
            return HttpResponse(404, reason=f"unknown session {session_id!r}")
        self._touch(record)
        try:
            cursor = int(req.headers.get(PARTIAL_CURSOR_HEADER, "0"))
        except ValueError:
            return HttpResponse(400, reason=f"bad {PARTIAL_CURSOR_HEADER}")
        self.tracer.count("gateway.session_polls")
        partials: list[dict] = []
        ready = False
        if record.ticket_id:
            partials = self.store.partials(record.ticket_id)
            ticket = self.gateway.storage.tickets.get(record.ticket_id)
            ready = ticket is not None and ticket.result_frame is not None
        doc = Element(
            "sessionpoll",
            {
                "cursor": str(len(partials)),
                "epoch": str(self.gateway.crash_epoch),
                "ready": "1" if ready else "0",
            },
        )
        for entry in partials[max(0, cursor):]:
            doc.add(
                "partial",
                {"seq": str(entry["seq"]), "site": entry["site"]},
                text=entry["payload"],
            )
        for event in self._push.pop(session_id, []):
            doc.add("event", {k: str(v) for k, v in event.items()})
        body = write_bytes(doc)
        return HttpResponse(
            200, body=body, body_size=len(body),
            headers=self._epoch_headers(
                {RESULT_READY_HEADER: "1" if ready else "0"}
            ),
        )

    def _queue(self, session_id: str, event: dict) -> None:
        queue = self._push.setdefault(session_id, [])
        if len(queue) >= self.gateway.config.push_queue_limit:
            queue.pop(0)
            self.tracer.count("gateway.session_push_dropped")
        queue.append(event)
        self.tracer.count("gateway.session_push")

    def notify_result_ready(self, ticket: "Ticket") -> None:
        """Queue a result-ready event on the dispatching device's sessions."""
        for record in self.store.values():
            if record.device_id == ticket.device_id:
                self._queue(
                    record.session_id,
                    {"kind": "result-ready", "ticket": ticket.ticket_id},
                )

    def notify_service_updated(self, code) -> None:
        """Queue a catalogue-update event on every subscriber's sessions."""
        subscribers = set(self.gateway.directory.subscribers_of(code.service))
        if not subscribers:
            return
        for record in self.store.values():
            if record.device_id in subscribers:
                self._queue(
                    record.session_id,
                    {
                        "kind": "service-updated",
                        "service": code.service,
                        "version": code.version,
                    },
                )

    # ------------------------------------------------------------ close
    def handle_close(self, req: HttpRequest, session_id: str) -> HttpResponse:
        """``POST /session/close/<sid>``: the device is done with the session.

        Partial streams are kept (they are keyed by ticket and reclaimed
        with the result document); the session record and its push queue
        go away — the no-leak invariant checks exactly this at quiescence.
        """
        record = self.store.get(session_id)
        if record is not None:
            self.store.delete(session_id)
            self.tracer.count("gateway.session_closes")
        self._push.pop(session_id, None)
        return HttpResponse(200, body=b"", body_size=0)
