"""Gateway overload protection: admission control + exactly-once dedup.

The paper's north-star is a gateway tier that absorbs "heavy traffic from
millions of users" on behalf of weak wireless devices.  Absorbing traffic
means refusing some of it gracefully: this module supplies the three
mechanisms the gateway (and the MAS behind it) use to stay upright under
a dispatch storm.

* :class:`TokenBucket` — a rate limiter on the *simulated* clock.  Tokens
  refill lazily at ``rate`` per second up to ``burst``; admission takes one
  token, and a drained bucket can say exactly how long until the next one.
* :class:`AdmissionController` — bounded intake per **priority class**.
  Each class (e.g. ``upload`` = expensive agent dispatches, ``download`` =
  cheap result fetches) owns a worker pool (a counted
  :class:`~repro.simnet.resources.Resource`), a bounded wait queue, and an
  optional token bucket.  Separate pools are the starvation guarantee:
  a pile-up of uploads can never consume the slots result downloads need.
  When saturated the controller *sheds* — raises
  :class:`~repro.core.errors.GatewayOverloadedError` carrying a computed
  ``retry_after`` hint instead of queueing unboundedly.
* :class:`DedupTable` — the exactly-once admission index, mapping a
  device-generated task id to the ticket it already produced.  The table is
  **volatile** (it models in-memory servlet state); after a crash it is
  rebuilt from the surviving durable tickets via :meth:`DedupTable.rebuild`.

Everything is deterministic: no wall clock, no unseeded randomness — the
same master seed replays the same sheds at the same simulated instants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..simnet.resources import Resource
from .errors import GatewayOverloadedError

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.kernel import Simulator
    from ..simnet.primitives import Event
    from ..telemetry.metrics import MetricsRegistry

__all__ = ["TokenBucket", "AdmissionController", "Admission", "DedupTable"]


class TokenBucket:
    """Lazy-refill token bucket on the simulated clock.

    ``rate`` tokens accrue per simulated second up to ``burst``.  The
    bucket starts full, so the first ``burst`` acquisitions always pass —
    rate limiting bites on *sustained* pressure, not the first arrival.
    """

    __slots__ = ("sim", "rate", "burst", "_tokens", "_stamp")

    def __init__(self, sim: "Simulator", rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.sim = sim
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._stamp = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._stamp:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, n: int = 1) -> bool:
        """Take ``n`` tokens if available; False (no side effect) otherwise."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after(self, n: int = 1) -> float:
        """Seconds until ``n`` tokens will have accrued (0 if already there)."""
        self._refill()
        deficit = n - self._tokens
        return deficit / self.rate if deficit > 0 else 0.0


class Admission:
    """A granted-or-pending intake slot; ``yield admission.request`` to wait.

    Must be released exactly once (use try/finally); releasing also updates
    the controller's queue-depth gauge so operators see the drain.
    """

    __slots__ = ("_controller", "_cls", "request", "enqueued_at", "_released")

    def __init__(self, controller, cls: str, request: "Event", enqueued_at: float):
        self._controller = controller
        self._cls = cls
        self.request = request
        self.enqueued_at = enqueued_at
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self._cls, self.request)


class _ClassState:
    __slots__ = ("name", "resource", "queue_limit", "bucket", "retry_after_s")

    def __init__(self, name, resource, queue_limit, bucket, retry_after_s):
        self.name = name
        self.resource = resource
        self.queue_limit = queue_limit
        self.bucket = bucket
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Bounded, classed intake for a server node.

    ``enabled=False`` keeps the worker pools (requests still contend for
    slots — the physical serialisation is real either way) but turns off
    every *protection*: no queue bound, no token bucket, no shedding.  That
    is precisely the "unprotected baseline" the overload experiment
    collapses: an unbounded queue in front of the same finite workers.
    """

    def __init__(
        self,
        sim: "Simulator",
        metrics: Optional["MetricsRegistry"] = None,
        node: str = "",
        enabled: bool = True,
    ) -> None:
        self.sim = sim
        self.metrics = metrics
        self.node = node
        self.enabled = enabled
        self.shed_total = 0
        self._classes: dict[str, _ClassState] = {}

    def add_class(
        self,
        name: str,
        workers: int,
        queue_limit: int,
        bucket: Optional[TokenBucket] = None,
        retry_after_s: float = 1.0,
    ) -> None:
        """Register priority class ``name`` with its own worker pool."""
        if name in self._classes:
            raise ValueError(f"duplicate admission class {name!r}")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        self._classes[name] = _ClassState(
            name, Resource(self.sim, capacity=workers), queue_limit, bucket,
            retry_after_s,
        )

    def queue_depth(self, name: str) -> int:
        return self._classes[name].resource.queued

    def inflight(self, name: str) -> int:
        return self._classes[name].resource.count

    def try_admit(self, name: str) -> Admission:
        """Claim an intake slot for class ``name`` — or shed.

        Returns an :class:`Admission` whose ``request`` event fires when a
        worker slot is granted (immediately if one is free).  Raises
        :class:`GatewayOverloadedError` with a ``retry_after`` hint when the
        class is saturated and protection is enabled.
        """
        st = self._classes[name]
        if self.enabled:
            if st.bucket is not None and not st.bucket.try_acquire():
                self.shed_total += 1
                raise GatewayOverloadedError(
                    f"{name} intake rate-limited at {self.node or 'gateway'}",
                    retry_after=max(st.retry_after_s, st.bucket.retry_after()),
                )
            res = st.resource
            if res.queued >= st.queue_limit and res.count >= res.capacity:
                self.shed_total += 1
                # Scale the hint with backlog: a deeper queue politely asks
                # the device to stay away longer, spreading the retry wave.
                depth = 1.0 + res.queued / max(1, res.capacity)
                raise GatewayOverloadedError(
                    f"{name} queue full at {self.node or 'gateway'} "
                    f"({res.queued} waiting)",
                    retry_after=st.retry_after_s * depth,
                )
        request = st.resource.request()
        self._set_gauges(st)
        return Admission(self, name, request, self.sim.now)

    def _release(self, name: str, request: "Event") -> None:
        st = self._classes[name]
        st.resource.release(request)
        self._set_gauges(st)

    def drop_queued(self) -> int:
        """Crash semantics: abandon every queued (not yet granted) request.

        In-memory servlet queues do not survive a process restart; callers
        waiting on a dropped request are the connections the crash reset.
        Returns how many requests were dropped.
        """
        dropped = 0
        for st in self._classes.values():
            dropped += st.resource.cancel_waiting()
            self._set_gauges(st)
        return dropped

    def _set_gauges(self, st: _ClassState) -> None:
        if self.metrics is None:
            return
        suffix = f"{st.name}@{self.node}" if self.node else st.name
        self.metrics.gauge(f"gateway.queue_depth:{suffix}").set(st.resource.queued)
        self.metrics.gauge(f"gateway.inflight:{suffix}").set(st.resource.count)


class DedupTable:
    """Task-id → ticket-id index backing exactly-once admission.

    Deliberately tiny: correctness lives in *where* it is consulted (before
    the nonce-replay check, so a retried frame dedups instead of 403-ing)
    and in the rebuild path.  The table is volatile; tickets are durable.

    Bindings may carry an expiry timestamp (armed when the result they
    guard is reclaimed): an expired entry answers like a miss and is purged,
    so long simulations don't grow the index without bound.  Entries bound
    without an expiry live for the gateway's lifetime.
    """

    __slots__ = ("_by_task",)

    durable = False

    def __init__(self) -> None:
        self._by_task: dict[str, tuple[str, Optional[float]]] = {}

    def __len__(self) -> int:
        return len(self._by_task)

    def lookup(self, task_id: str, now: Optional[float] = None) -> Optional[str]:
        if not task_id:
            return None
        entry = self._by_task.get(task_id)
        if entry is None:
            return None
        ticket_id, expires_at = entry
        if now is not None and expires_at is not None and now >= expires_at:
            del self._by_task[task_id]
            return None
        return ticket_id

    def bind(
        self, task_id: str, ticket_id: str, expires_at: Optional[float] = None
    ) -> None:
        if task_id:
            self._by_task[task_id] = (ticket_id, expires_at)

    def set_expiry(self, task_id: str, expires_at: Optional[float]) -> None:
        """Arm (or clear) the TTL on an existing binding; miss is a no-op."""
        entry = self._by_task.get(task_id)
        if entry is not None:
            self._by_task[task_id] = (entry[0], expires_at)

    def purge_expired(self, now: float) -> int:
        """Drop every binding whose expiry has passed; returns the count."""
        dead = [
            task_id
            for task_id, (_, expires_at) in self._by_task.items()
            if expires_at is not None and now >= expires_at
        ]
        for task_id in dead:
            del self._by_task[task_id]
        return len(dead)

    def forget(self, task_id: str) -> None:
        self._by_task.pop(task_id, None)

    def items(self) -> list[tuple[str, str, Optional[float]]]:
        """Every binding as ``(task_id, ticket_id, expires_at)`` (drain scan)."""
        return [
            (task_id, ticket_id, expires_at)
            for task_id, (ticket_id, expires_at) in sorted(self._by_task.items())
        ]

    def clear(self) -> None:
        self._by_task.clear()

    def rebuild(self, tickets: Iterable) -> int:
        """Recover the index from durable ticket state after a restart.

        Every surviving ticket that recorded a task id re-binds — including
        finalized ones, so a post-restart retry of an already-completed task
        still returns its existing ticket instead of double-dispatching.
        "failed" tickets are skipped: their tasks never produced an agent
        and remain free to retry afresh.
        """
        self.clear()
        for ticket in tickets:
            task_id = getattr(ticket, "task_id", "")
            if task_id and getattr(ticket, "status", "") != "failed":
                self._by_task[task_id] = (ticket.ticket_id, None)
        return len(self._by_task)
