"""Platform configuration.

One frozen dataclass gathers every tunable the experiments sweep: the
compression codec, the security switch, gateway-selection policy parameters,
and the CPU cost model for device-side packing work.

Cost model: nominal seconds per operation on the *server* hardware class;
actual simulated time scales by the executing node's ``cpu_factor`` (a PDA
pays ×25).  The defaults make PI packing cost a few hundred milliseconds on
a PDA — the paper's "only [a] small amount of CPU time".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PDAgentConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class PDAgentConfig:
    """All platform tunables (device and gateway side)."""

    # --- interoperability / packing -------------------------------------
    #: Compression codec for PI and result documents ("lzss", "huffman",
    #: "null" = compression disabled).
    codec: str = "lzss"
    #: Encrypt the PI with the gateway's public key (§3.4).  When False the
    #: PI is sent with an MD5 integrity tag only.
    encrypt: bool = True
    #: RSA modulus size for gateway keys.
    rsa_bits: int = 512

    # --- gateway selection (§3.5) ------------------------------------------
    #: Selection policy: "nearest" (paper), "first", "random", "round_robin".
    selection_policy: str = "nearest"
    #: Probe size in bytes (the paper sends "1-bit data"; one byte is the
    #: minimum the byte-granular simulator can carry).
    probe_size: int = 1
    #: Re-download the address list when the chosen gateway's RTT exceeds
    #: this threshold (seconds).
    rtt_threshold: float = 2.5
    #: How long a measured RTT stays fresh before re-probing (seconds).
    rtt_cache_ttl: float = 300.0

    # --- device-side CPU cost model (nominal seconds, server class) ---------
    xml_encode_s_per_kb: float = 0.0008
    xml_parse_s_per_kb: float = 0.0010
    compress_s_per_kb: float = 0.0015
    decompress_s_per_kb: float = 0.0008
    encrypt_base_s: float = 0.004  # RSA seal of the session key
    encrypt_s_per_kb: float = 0.0006  # keystream XOR
    md5_s_per_kb: float = 0.0002

    # --- gateway-side processing ------------------------------------------
    #: Fixed servlet overhead per gateway request.
    gateway_service_time: float = 0.008
    #: Unpack (decrypt+decompress+parse) nominal cost per KB at the gateway.
    gateway_unpack_s_per_kb: float = 0.0012

    # --- result collection -----------------------------------------------------
    #: Device polling interval when using poll-based collection (seconds).
    poll_interval: float = 5.0
    #: Maximum polls before giving up.
    max_polls: int = 240

    # --- fault tolerance (device-side retry + gateway watchdog) -------------
    #: Attempts per device↔gateway exchange before surfacing GatewayError.
    retry_max_attempts: int = 3
    #: Backoff before retry k is ``base * factor**(k-1)`` (capped), with
    #: deterministic ±jitter drawn from the device's named RNG stream.
    retry_base_delay: float = 0.5
    retry_backoff_factor: float = 2.0
    retry_max_delay: float = 8.0
    #: Jitter fraction in [0, 1): delay *= 1 + jitter * U(-1, 1).
    retry_jitter: float = 0.1
    #: Wall-clock budget per logical exchange (all attempts + backoff).
    retry_deadline_s: float = 60.0
    #: Circuit breaker: consecutive failures before a gateway is skipped,
    #: and how long it stays skipped before a half-open retry.
    breaker_threshold: int = 2
    breaker_cooldown_s: float = 30.0
    #: Gateway-side watchdog: a ticket still "dispatched" after this many
    #: seconds is finalized as "failed" (retriable) instead of hanging.
    #: <= 0 disables the watchdog.
    ticket_watchdog_s: float = 120.0

    # --- overload protection (gateway admission + device cooperation) -------
    #: Exactly-once admission: dedup retried PI uploads by device task id so
    #: a lost response never materialises a second agent.
    dedup_enabled: bool = True
    #: Master switch for gateway admission control (bounded queues, token
    #: bucket, 503 shedding).  Off = the unprotected baseline: the same
    #: finite worker pool behind an unbounded queue.
    admission_enabled: bool = True
    #: Concurrent PI dispatches a gateway processes (its servlet pool for
    #: the expensive "upload" class).
    gateway_dispatch_workers: int = 4
    #: Uploads allowed to wait for a dispatch worker before shedding.
    admission_queue_limit: int = 16
    #: Concurrent result/agent-op requests (cheap, latency-sensitive class;
    #: a separate pool so downloads are never starved by uploads).
    gateway_download_workers: int = 32
    #: Downloads allowed to wait before shedding.
    download_queue_limit: int = 128
    #: Token bucket pacing PI admission: sustained uploads/second and burst
    #: size.  rate <= 0 disables the bucket (queue bound still applies).
    admission_rate: float = 0.0
    admission_burst: int = 8
    #: Baseline Retry-After hint (seconds) advertised on a shed; scaled up
    #: with queue depth so retry waves spread out.
    shed_retry_after_s: float = 1.0
    #: Extra fixed CPU cost per agent dispatch at the gateway (nominal
    #: seconds) — lets overload experiments model heavyweight dispatch.
    dispatch_cost_s: float = 0.0
    #: Result retention: seconds past the *first successful download* after
    #: which the result document expires and its workspace is reclaimed.
    #: <= 0 retains results forever (the pre-TTL behaviour).
    result_ttl_s: float = 600.0
    #: Device side: honour a 503's Retry-After (sleep, then retry the same
    #: exchange) instead of failing immediately.  Sheds never trip the
    #: circuit breaker either way.
    retry_honour_retry_after: bool = True
    #: Cap on a server-advertised Retry-After the device will actually wait.
    retry_after_cap_s: float = 30.0
    #: Dedup binding retention: seconds past result reclaim (expiry or
    #: dispose) after which the task_id→ticket binding itself is dropped, so
    #: long-running gateways don't accumulate bindings forever.  <= 0 keeps
    #: bindings for the gateway's lifetime (the pre-TTL behaviour).
    dedup_ttl_s: float = 0.0

    # --- durable storage & fleet tier ---------------------------------------
    #: Ticket/dedup/result persistence: "memory" (original volatile
    #: structures) or "sqlite" (embedded durable store; crash/restart and
    #: process replacement recover the full ledger).
    storage_backend: str = "memory"
    #: Path for the sqlite backend; "" keeps a private in-memory database
    #: per gateway (hermetic simulations).
    sqlite_path: str = ""
    #: Fleet tier: consistent-hash ownership of task_ids across gateways
    #: with claim forwarding, making dedup authoritative fleet-wide.
    fleet_enabled: bool = False
    #: Virtual nodes per gateway on the hash ring.
    fleet_replicas: int = 32
    #: Claim RPC rounds against the owner before degrading to
    #: local-accept-with-reconciliation.
    fleet_claim_attempts: int = 2
    #: Per-round claim timeout (seconds).
    fleet_claim_timeout_s: float = 3.0
    #: Forwarding circuit breaker: consecutive claim failures before an
    #: owner is presumed down, and the cooldown before a half-open retry.
    fleet_breaker_threshold: int = 2
    fleet_breaker_cooldown_s: float = 15.0
    #: Reconciliation loop for local-accepted tasks: re-claim every
    #: interval, at most this many times, then abandon.
    fleet_reconcile_interval_s: float = 5.0
    fleet_reconcile_attempts: int = 10
    #: Failure detector: suspicion probe cadence, and how long a suspect
    #: may stay silent before the shared view marks it ``down``.
    fleet_heartbeat_interval_s: float = 1.0
    fleet_suspicion_timeout_s: float = 6.0
    #: Graceful drain: how long a draining gateway waits for in-flight
    #: dispatches to finish before migrating whatever state it still owns.
    fleet_drain_timeout_s: float = 30.0
    #: Migration wire protocol: items per /fleet/migrate batch and send
    #: attempts per batch (idempotent — a resend is first-wins at the
    #: receiver, so retries are safe).
    fleet_migrate_batch: int = 32
    fleet_migrate_attempts: int = 3
    #: Release retries before counting ``fleet.release_failed`` and letting
    #: the stale owner binding age out via its TTL.
    fleet_release_attempts: int = 3
    fleet_release_retry_s: float = 2.0

    # --- streaming session layer ---------------------------------------------
    #: Device side: upload the PI through a resumable chunked session and
    #: collect per-hop partial results instead of the one-shot
    #: store-and-forward exchange.  Off by default — the classic path.
    session_enabled: bool = False
    #: Chunk size for resumable uploads (bytes of the protected PI frame
    #: per PUT).  Small enough that a link flap loses at most one chunk.
    session_chunk_bytes: int = 1024
    #: Concurrent session requests a gateway processes (its own admission
    #: class, so a chunk flood can never starve result downloads).
    gateway_session_workers: int = 8
    #: Session requests allowed to wait for a worker before shedding.
    session_queue_limit: int = 32
    #: Idle session retention: an open session with no contact for this
    #: many seconds is reaped (its partial upload state is dropped).
    session_ttl_s: float = 600.0
    #: Per-session reconnect-window push queue bound; when full the oldest
    #: notification is dropped (the poll fallback still covers it).
    push_queue_limit: int = 64
    #: Device partial-result poll cadence while a session is open (seconds)
    #: — much tighter than ``poll_interval`` because the session answers
    #: from memory and flushes queued push events on the same contact.
    session_poll_interval_s: float = 2.0

    def __post_init__(self) -> None:
        if self.selection_policy not in ("nearest", "first", "random", "round_robin"):
            raise ValueError(f"unknown selection policy {self.selection_policy!r}")
        if self.probe_size < 1:
            raise ValueError("probe_size must be >= 1")
        if self.rtt_threshold <= 0:
            raise ValueError("rtt_threshold must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.retry_deadline_s <= 0:
            raise ValueError("retry_deadline_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")
        if self.gateway_dispatch_workers < 1:
            raise ValueError("gateway_dispatch_workers must be >= 1")
        if self.gateway_download_workers < 1:
            raise ValueError("gateway_download_workers must be >= 1")
        if self.admission_queue_limit < 0 or self.download_queue_limit < 0:
            raise ValueError("admission queue limits must be >= 0")
        if self.admission_rate > 0 and self.admission_burst < 1:
            raise ValueError("admission_burst must be >= 1 when rate-limited")
        if self.shed_retry_after_s <= 0:
            raise ValueError("shed_retry_after_s must be positive")
        if self.dispatch_cost_s < 0:
            raise ValueError("dispatch_cost_s must be non-negative")
        if self.retry_after_cap_s <= 0:
            raise ValueError("retry_after_cap_s must be positive")
        if self.storage_backend not in ("memory", "sqlite"):
            raise ValueError(f"unknown storage backend {self.storage_backend!r}")
        if self.fleet_replicas < 1:
            raise ValueError("fleet_replicas must be >= 1")
        if self.fleet_claim_attempts < 1:
            raise ValueError("fleet_claim_attempts must be >= 1")
        if self.fleet_claim_timeout_s <= 0:
            raise ValueError("fleet_claim_timeout_s must be positive")
        if self.fleet_breaker_threshold < 1:
            raise ValueError("fleet_breaker_threshold must be >= 1")
        if self.fleet_breaker_cooldown_s <= 0:
            raise ValueError("fleet_breaker_cooldown_s must be positive")
        if self.fleet_reconcile_interval_s <= 0:
            raise ValueError("fleet_reconcile_interval_s must be positive")
        if self.fleet_reconcile_attempts < 1:
            raise ValueError("fleet_reconcile_attempts must be >= 1")
        if self.fleet_heartbeat_interval_s <= 0:
            raise ValueError("fleet_heartbeat_interval_s must be positive")
        if self.fleet_suspicion_timeout_s <= 0:
            raise ValueError("fleet_suspicion_timeout_s must be positive")
        if self.fleet_drain_timeout_s <= 0:
            raise ValueError("fleet_drain_timeout_s must be positive")
        if self.fleet_migrate_batch < 1:
            raise ValueError("fleet_migrate_batch must be >= 1")
        if self.fleet_migrate_attempts < 1:
            raise ValueError("fleet_migrate_attempts must be >= 1")
        if self.fleet_release_attempts < 1:
            raise ValueError("fleet_release_attempts must be >= 1")
        if self.fleet_release_retry_s <= 0:
            raise ValueError("fleet_release_retry_s must be positive")
        if self.session_chunk_bytes < 64:
            raise ValueError("session_chunk_bytes must be >= 64")
        if self.gateway_session_workers < 1:
            raise ValueError("gateway_session_workers must be >= 1")
        if self.session_queue_limit < 0:
            raise ValueError("session_queue_limit must be >= 0")
        if self.session_ttl_s <= 0:
            raise ValueError("session_ttl_s must be positive")
        if self.push_queue_limit < 1:
            raise ValueError("push_queue_limit must be >= 1")
        if self.session_poll_interval_s <= 0:
            raise ValueError("session_poll_interval_s must be positive")

    def with_(self, **changes) -> "PDAgentConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)

    # -- cost helpers (nominal seconds for n bytes) -----------------------------
    def pack_cost(self, xml_bytes: int) -> float:
        """Device-side cost to encode+compress+(encrypt) a PI of given size."""
        kb = xml_bytes / 1024.0
        cost = self.xml_encode_s_per_kb * kb + self.compress_s_per_kb * kb
        cost += self.md5_s_per_kb * kb
        if self.encrypt:
            cost += self.encrypt_base_s + self.encrypt_s_per_kb * kb
        return cost

    def unpack_cost(self, wire_bytes: int) -> float:
        """Receiver-side cost to verify+(decrypt)+decompress+parse."""
        kb = wire_bytes / 1024.0
        cost = self.md5_s_per_kb * kb + self.decompress_s_per_kb * kb
        cost += self.xml_parse_s_per_kb * kb
        if self.encrypt:
            cost += self.encrypt_base_s + self.encrypt_s_per_kb * kb
        return cost


DEFAULT_CONFIG = PDAgentConfig()
