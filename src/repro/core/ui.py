"""The platform UI (Fig. 4's "UI" component; Figs. 9/11 screens).

"UI is the interface via which mobile users submit service requirements and
administer mobile agent activities both internally and externally."

This is a *programmatic* MIDP-style screen machine — the reproduction of
the prototype's LCDUI forms.  Each screen renders to text (what the Fig. 9
captures show) and exposes the actions a softkey would trigger.  Actions
that touch the network return processes; :class:`DeviceUI` runs them on the
device's simulator, so the UI can be driven synchronously from scripts and
tests:

>>> ui = DeviceUI(platform)                       # doctest: +SKIP
>>> print(ui.main_screen())                       # doctest: +SKIP
>>> ui.subscribe("ebanking")                      # doctest: +SKIP
>>> ticket = ui.deploy("ebanking", params, stops) # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any, Optional

from ..mas.itinerary import Stop
from .errors import PDAgentError, ResultNotReadyError
from .platform import DispatchHandle, PDAgentPlatform

__all__ = ["DeviceUI"]

_RULE = "-" * 34


class DeviceUI:
    """Text-screen front end over a :class:`PDAgentPlatform`."""

    def __init__(self, platform: PDAgentPlatform) -> None:
        self.platform = platform
        self._handles: dict[str, DispatchHandle] = {}
        self.status_line = "ready"

    # ------------------------------------------------------------ plumbing
    def _run(self, process) -> Any:
        """Drive one platform process to completion on the simulator."""
        sim = self.platform.device.sim
        proc = sim.process(process)
        return sim.run(until=proc)

    def _remember(self, handle: DispatchHandle) -> None:
        self._handles[handle.ticket] = handle

    def handle_for(self, ticket: str) -> DispatchHandle:
        try:
            return self._handles[ticket]
        except KeyError:
            raise PDAgentError(f"UI knows no ticket {ticket!r}") from None

    # ------------------------------------------------------------ screens
    def main_screen(self) -> str:
        """Fig. 9a: Platform Main Screen."""
        lines = [
            "PDAgent Platform",
            _RULE,
            "1. Service Subscription",
            "2. Deploy Application",
            "3. Mobile Agent Management",
            "4. Internal Database Management",
            _RULE,
            f"[{self.status_line}]",
        ]
        return "\n".join(lines)

    def agent_management_screen(self) -> str:
        """Fig. 9b: Mobile Agent Management — dispatched agents + actions."""
        lines = ["Mobile Agent Management", _RULE]
        records = self.platform.list_dispatches()
        if not records:
            lines.append("(no agents dispatched)")
        for rec in records:
            lines.append(f"{rec.ticket}  {rec.service:<10s} {rec.status}")
        lines += [_RULE, "actions: status / retract / clone / dispose / collect"]
        return "\n".join(lines)

    def database_screen(self) -> str:
        """Fig. 9c: Internal Database Management — stored code + results."""
        lines = ["Internal Database", _RULE, "MA code:"]
        for stored in self.platform.list_codes():
            code = stored.code
            lines.append(
                f"  {stored.code_id}  {code.service} v{code.version} "
                f"({stored.stored_bytes} B stored)"
            )
        lines.append("results:")
        for ticket in self.platform.db.list_results():
            lines.append(f"  {ticket}")
        used = self.platform.device.storage.used_bytes
        quota = self.platform.device.storage.quota_bytes
        lines += [_RULE, f"storage: {used}/{quota} B"]
        return "\n".join(lines)

    # ------------------------------------------------------------ actions
    def subscribe(self, service: str, gateway: Optional[str] = None) -> str:
        """Service Subscription screen's confirm action; returns the code id."""
        stored = self._run(self.platform.subscribe(service, gateway=gateway))
        self.status_line = f"subscribed {service} as {stored.code_id}"
        return stored.code_id

    def deploy(
        self,
        service: str,
        params: dict[str, Any],
        stops: Optional[list[Stop]] = None,
    ) -> str:
        """Fig. 11b/11c: submit the form, show the dispatched agent id."""
        handle = self._run(self.platform.deploy(service, params, stops=stops))
        self._remember(handle)
        self.status_line = f"dispatched {handle.agent_id}"
        return handle.ticket

    def agent_status(self, ticket: str) -> str:
        state = self._run(self.platform.agent_status(self.handle_for(ticket)))
        self.status_line = f"{ticket}: {state}"
        return state

    def retract(self, ticket: str) -> str:
        state = self._run(self.platform.retract_agent(self.handle_for(ticket)))
        self.status_line = f"{ticket}: {state}"
        return state

    def clone(self, ticket: str) -> str:
        clone = self._run(self.platform.clone_agent(self.handle_for(ticket)))
        self._remember(clone)
        self.status_line = f"cloned {ticket} -> {clone.ticket}"
        return clone.ticket

    def dispose(self, ticket: str) -> str:
        state = self._run(self.platform.dispose_agent(self.handle_for(ticket)))
        self.status_line = f"{ticket}: {state}"
        return state

    def collect(self, ticket: str) -> Optional[dict]:
        """Fig. 11d: Obtain Transaction Results; None if not ready yet."""
        try:
            result = self._run(self.platform.collect(self.handle_for(ticket)))
        except ResultNotReadyError:
            self.status_line = f"{ticket}: result not ready"
            return None
        self.status_line = f"{ticket}: collected"
        return {"status": result.status, "data": result.data}
