"""PDAgent core — the paper's contribution.

Device side: :class:`PDAgentPlatform` (facade), :mod:`~repro.core.api`
(§3.6 primitives), Agent Dispatcher, Network Manager, gateway selector,
internal RMS database, security.

Infrastructure side: :class:`Gateway` (Fig. 6 pipeline over a pluggable MAS
adapter), :class:`CentralServer` (address list + trust anchor), and the
:class:`DeploymentBuilder` that wires complete environments.
"""

from .admission import AdmissionController, DedupTable, TokenBucket
from .config import DEFAULT_CONFIG, PDAgentConfig
from .deployment import Deployment, DeploymentBuilder
from .device_db import DispatchRecord, InternalDatabase, StoredCode
from .dispatcher import AgentDispatcher
from .errors import (
    AuthorizationError,
    DeploymentError,
    GatewayError,
    GatewayOverloadedError,
    NoGatewayAvailableError,
    PDAgentError,
    ResultExpiredError,
    ResultNotReadyError,
    SubscriptionError,
)
from .fleet import Fleet, FleetClient, HashRing
from .gateway import GATEWAY_PORT, TASK_ID_HEADER, Gateway, Ticket
from .netmanager import NetworkManager
from .packed_info import PackedInfo, PIContent, pack, pi_from_xml, pi_to_xml, unpack
from .platform import (
    CollectedResult,
    DispatchHandle,
    PDAgentPlatform,
    StreamingDispatch,
)
from .registry import CentralServer, GatewayEntry, fetch_gateway_list
from .retry import CircuitBreaker, RetryPolicy
from .security import DeviceSecurity, GatewaySecurity
from .session import SessionManager
from .selection import GatewaySelector, ProbeResult
from .storage import GatewayStorage, make_storage
from .ui import DeviceUI
from .subscription import (
    ServiceCatalog,
    ServiceCode,
    Subscription,
    SubscriptionDirectory,
    code_from_xml,
    code_to_xml,
)

__all__ = [
    "PDAgentConfig",
    "DeviceUI",
    "DEFAULT_CONFIG",
    "PDAgentPlatform",
    "DispatchHandle",
    "CollectedResult",
    "Gateway",
    "Ticket",
    "GATEWAY_PORT",
    "CentralServer",
    "GatewayEntry",
    "fetch_gateway_list",
    "GatewaySelector",
    "ProbeResult",
    "AgentDispatcher",
    "NetworkManager",
    "RetryPolicy",
    "CircuitBreaker",
    "DeviceSecurity",
    "GatewaySecurity",
    "InternalDatabase",
    "StoredCode",
    "DispatchRecord",
    "ServiceCode",
    "ServiceCatalog",
    "Subscription",
    "SubscriptionDirectory",
    "code_to_xml",
    "code_from_xml",
    "PIContent",
    "PackedInfo",
    "pack",
    "unpack",
    "pi_to_xml",
    "pi_from_xml",
    "Deployment",
    "DeploymentBuilder",
    "PDAgentError",
    "SubscriptionError",
    "DeploymentError",
    "AuthorizationError",
    "ResultNotReadyError",
    "ResultExpiredError",
    "GatewayError",
    "GatewayOverloadedError",
    "NoGatewayAvailableError",
    "AdmissionController",
    "DedupTable",
    "TokenBucket",
    "TASK_ID_HEADER",
    "Fleet",
    "FleetClient",
    "HashRing",
    "GatewayStorage",
    "make_storage",
    "SessionManager",
    "StreamingDispatch",
]
