"""The PDAgent Platform: the device-side facade (Fig. 4).

Combines the UI-facing operations (subscribe / deploy / collect / manage)
with the background System API components (Agent Dispatcher, Network
Manager, internal database, gateway selector, security).  All operations
that touch the network are processes; everything else happens offline.

Typical flow (mirrors Figs. 5–6)::

    platform = PDAgentPlatform(device, central_address="central")
    # online: download code once
    stored = yield from platform.subscribe("ebanking")
    # offline: user enters parameters …
    # online: one short connection to upload the PI
    handle = yield from platform.deploy("ebanking", params, stops=stops)
    # offline while the agent travels; later, one short connection:
    result = yield from platform.collect(handle)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..compressor import decompress
from ..crypto import KeyRing
from ..mas.itinerary import Stop
from ..mas.serializer import value_from_xml
from ..telemetry.spans import SpanContext
from ..xmlcodec import parse_bytes
from .config import DEFAULT_CONFIG, PDAgentConfig
from .device_db import DispatchRecord, InternalDatabase, StoredCode
from .dispatcher import AgentDispatcher
from .errors import GatewayError, ResultNotReadyError, SubscriptionError
from .netmanager import NetworkManager
from .retry import CircuitBreaker, RetryPolicy
from .security import DeviceSecurity
from .selection import GatewaySelector
from .subscription import code_from_xml

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device
    from ..device.session import DeviceSession

__all__ = [
    "PDAgentPlatform",
    "DispatchHandle",
    "CollectedResult",
    "StreamingDispatch",
]


@dataclass(frozen=True)
class DispatchHandle:
    """What the user holds after a deployment: enough to manage the agent."""

    ticket: str
    agent_id: str
    gateway: str
    service: str
    #: Telemetry trace this deployment runs under ("" when untraced);
    #: :meth:`PDAgentPlatform.collect` uses it to close the task's root span.
    trace_id: str = ""
    #: Idempotency key of the logical task; re-deploying with the same
    #: ``task_id`` is safe — the gateway returns the existing ticket.
    task_id: str = ""


@dataclass(frozen=True)
class CollectedResult:
    """A downloaded, verified, parsed result document."""

    ticket: str
    status: str
    data: Any
    document_bytes: int


@dataclass(frozen=True)
class StreamingDispatch:
    """A streaming deployment: the classic handle plus its live session.

    The session object keeps accumulating partial results and push events
    as :meth:`PDAgentPlatform.collect_streaming` polls it; its ledgers
    (``bytes_sent``, ``partials``, ``first_partial_at`` …) are what the
    streaming experiments measure.
    """

    handle: DispatchHandle
    session: "DeviceSession"


class PDAgentPlatform:
    """The lightweight platform running on the wireless device."""

    def __init__(
        self,
        device: "Device",
        central_address: str,
        config: Optional[PDAgentConfig] = None,
    ) -> None:
        self.device = device
        self.config = config or DEFAULT_CONFIG
        self.keyring = KeyRing()
        rng = device.network.streams.get(f"crypto:{device.device_id}")
        self.security = DeviceSecurity(self.config, self.keyring, rng.bytes)
        self.db = InternalDatabase(device.storage, self.config.codec)
        self.dispatcher = AgentDispatcher(device, self.db, self.config, self.security)
        self.retry_policy = RetryPolicy.from_config(self.config)
        self.breaker = CircuitBreaker(
            device.sim,
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown_s,
        )
        self.netmanager = NetworkManager(
            device, retry_policy=self.retry_policy, breaker=self.breaker
        )
        self.selector = GatewaySelector(
            device.network,
            device.address,
            central_address,
            self.config,
            self.keyring,
            breaker=self.breaker,
        )

    def _resolve_gateway(self, gateway: Optional[str]) -> Generator:
        """Process: pick a gateway (policy) or vet an explicitly named one.

        Even for an explicit gateway, the device must hold its public key —
        keys are distributed with the central server's trusted address list
        (§3.4), so the list is fetched lazily on first need.
        """
        if gateway is None:
            gateway = yield from self.selector.select()
        elif not self.keyring.knows(gateway):
            yield from self.selector.refresh_list()
            if not self.keyring.knows(gateway):
                from .errors import NoGatewayAvailableError

                raise NoGatewayAvailableError(
                    f"gateway {gateway!r} is not on the trusted address list"
                )
        return gateway

    # ------------------------------------------------------------ subscription
    def subscribe(self, service: str, gateway: Optional[str] = None) -> Generator:
        """Process (§3.1): download MA code and store it in the database.

        Returns the :class:`~repro.core.device_db.StoredCode`.  "Once the
        service agent code is present in PDAgent's database, the
        subscription is no longer needed."
        """
        gateway = yield from self._resolve_gateway(gateway)
        frame = yield from self.netmanager.download_code(gateway, service)
        yield self.device.compute(self.config.unpack_cost(len(frame)))
        xml_bytes = decompress(self.security.unprotect_result(frame))
        code, code_id = code_from_xml(parse_bytes(xml_bytes))
        if not code_id:
            raise SubscriptionError("gateway did not assign a code id")
        return self.db.store_code(code, code_id)

    def is_subscribed(self, service: str) -> bool:
        return self.db.find_code_by_service(service) is not None

    # ------------------------------------------------------------ deployment
    def deploy(
        self,
        service: str,
        params: dict[str, Any],
        stops: Optional[list[Stop]] = None,
        gateway: Optional[str] = None,
        task_id: Optional[str] = None,
        deadline: float = 0.0,
    ) -> Generator:
        """Process (§3.2): pack and upload the application.

        Parameter entry and packing happen offline; only the PI upload opens
        a connection.  Returns a :class:`DispatchHandle`.

        ``task_id`` is the task's idempotency key; one is generated per
        call when omitted.  Application-level retries should pass the
        previous attempt's ``handle.task_id`` (or pre-generate one via
        ``platform.dispatcher.new_task_id()``) so a deployment whose
        response was lost is deduplicated by the gateway instead of
        dispatching a second agent.
        """
        stored = self.db.find_code_by_service(service)
        if stored is None:
            raise SubscriptionError(
                f"not subscribed to {service!r}; call subscribe() first"
            )
        explicit = gateway is not None
        if task_id is None:
            task_id = self.dispatcher.new_task_id()
        # The task root span covers the whole user-visible task: it stays
        # open while the agent travels and is closed by collect().  Every
        # span of this deployment — across all three tiers — nests under it.
        tele = self.device.network.telemetry
        root = tele.start_span(
            f"task:{service}", node=self.device.address,
            attrs={"device": self.device.device_id},
        )
        deploy_span = tele.start_span(
            "device.deploy", node=self.device.address, parent=root
        )
        try:
            gateway = yield from self._resolve_gateway(gateway)
            failed: set[str] = set()
            while True:
                content = self.dispatcher.build_content(
                    stored, params, stops=stops, origin=gateway,
                    trace=deploy_span.context, task_id=task_id,
                    deadline=deadline,
                )
                packed = yield from self.dispatcher.pack_for(
                    content, gateway, trace=deploy_span.context
                )
                try:
                    ticket, agent_id = yield from self.netmanager.upload_pi(
                        gateway, packed.data, trace=deploy_span.context,
                        task_id=task_id,
                    )
                    break
                except GatewayError:
                    # Failover (§3.5 reliability): an unreachable or failing
                    # gateway is struck from consideration and the next-best
                    # candidate is tried.  Explicitly named gateways never fail
                    # over — the caller asked for that one specifically.
                    if explicit:
                        raise
                    # The abandoned attempt's frame is re-sent from byte
                    # zero at the next gateway: a store-and-forward restart.
                    self.netmanager.count_restart(
                        len(packed.data), "deploy-failover"
                    )
                    failed.add(gateway)
                    gateway = yield from self.selector.select(exclude=failed)
            deploy_span.end(gateway=gateway, ticket=ticket)
        finally:
            if deploy_span.open:
                deploy_span.end(status="error")
            if root.open and deploy_span.status != "ok":
                root.end(status="error")
        handle = DispatchHandle(
            ticket=ticket, agent_id=agent_id, gateway=gateway, service=service,
            trace_id=root.trace_id, task_id=task_id,
        )
        self.db.record_dispatch(
            DispatchRecord(
                ticket=ticket,
                agent_id=agent_id,
                gateway=gateway,
                service=service,
                status="dispatched",
                dispatched_at=self.device.sim.now,
            )
        )
        return handle

    # ------------------------------------------------------------ results
    def collect(
        self, handle: DispatchHandle, via: Optional[str] = None
    ) -> Generator:
        """Process (§3.3): one download attempt for the result document.

        ``via`` names a different gateway to collect through (mobility: the
        user moved; the nearest gateway relays the document from the
        dispatching one over the wired network).  ``via=""`` auto-selects
        the currently nearest gateway.

        Raises :class:`ResultNotReadyError` if the agent has not returned
        yet.  On success the document is verified, parsed, stored in the
        internal database, and returned as a :class:`CollectedResult`.
        """
        # The ticket id encodes its issuing gateway ("<addr>/t-<n>"): that —
        # not handle.gateway — is where the result document lives.  A handle
        # returned by a fleet dedup (upload at B answered with A's ticket)
        # records gateway=B but must download from A.
        head, sep, _ = handle.ticket.partition("/t-")
        origin = head if sep else handle.gateway
        if via == "":
            # Auto-select after a link flap: prefer the gateway that issued
            # the ticket — collecting there is direct, anywhere else relays.
            via = yield from self.selector.select(prefer=origin)
        gateway = via or handle.gateway
        tele = self.device.network.telemetry
        root = tele.root_of(handle.trace_id) if handle.trace_id else None
        span = tele.start_span(
            "device.collect",
            node=self.device.address,
            parent=root,
            attrs={"ticket": handle.ticket, "gateway": gateway},
        )
        try:
            frame = yield from self.netmanager.download_result(
                gateway, handle.ticket, origin=origin, trace=span.context
            )
        except ResultNotReadyError:
            # Not an error: the agent is still travelling.  The root stays
            # open — a later collect (or the finalize pass) will close it.
            span.end(status="not-ready")
            raise
        except Exception:
            span.end(status="error")
            raise
        yield self.device.compute(self.config.unpack_cost(len(frame)))
        xml_bytes = decompress(self.security.unprotect_result(frame))
        doc = parse_bytes(xml_bytes)
        self.db.store_result(handle.ticket, xml_bytes)
        self.db.update_dispatch_status(handle.ticket, "collected")
        span.end(document_bytes=len(xml_bytes))
        if root is not None and root.open:
            root.end(status=doc.get("status", "ok") or "ok")
        return CollectedResult(
            ticket=handle.ticket,
            status=doc.get("status", ""),
            data=value_from_xml(doc.require_child("data")),
            document_bytes=len(xml_bytes),
        )

    def collect_poll(self, handle: DispatchHandle) -> Generator:
        """Process: poll :meth:`collect` until the result is ready.

        Each poll is a real (short) connection; the poll interval is
        configured by :attr:`~repro.core.config.PDAgentConfig.poll_interval`.
        When the gateway's "not ready" answer carries hop progress, the
        next wait stretches with the hops still ahead of the agent —
        a tour with five sites to go is not worth re-dialling for in one
        base interval.
        """
        for _ in range(self.config.max_polls):
            try:
                result = yield from self.collect(handle)
                return result
            except ResultNotReadyError as exc:
                scale = max(1, exc.hops_remaining or 0)
                yield self.device.sim.timeout(self.config.poll_interval * scale)
        raise ResultNotReadyError(
            f"{handle.ticket}: no result after {self.config.max_polls} polls"
        )

    # ------------------------------------------------------------ streaming sessions
    def deploy_streaming(
        self,
        service: str,
        params: dict[str, Any],
        stops: Optional[list[Stop]] = None,
        gateway: Optional[str] = None,
        task_id: Optional[str] = None,
        deadline: float = 0.0,
    ) -> Generator:
        """Process: :meth:`deploy`, but over a resumable chunked session.

        The packed PI travels as ``config.session_chunk_bytes``-sized
        chunks; a LinkDown costs only the chunk in flight (plus the resume
        handshake) instead of the whole frame.  Returns a
        :class:`StreamingDispatch` whose session then serves
        :meth:`collect_streaming`.  Requires ``config.session_enabled``
        deployments — a gateway without the session layer answers 404 and
        the deployment fails rather than silently degrading.
        """
        from ..device.session import DeviceSession  # lazy: import cycle

        stored = self.db.find_code_by_service(service)
        if stored is None:
            raise SubscriptionError(
                f"not subscribed to {service!r}; call subscribe() first"
            )
        explicit = gateway is not None
        if task_id is None:
            task_id = self.dispatcher.new_task_id()
        tele = self.device.network.telemetry
        root = tele.start_span(
            f"task:{service}", node=self.device.address,
            attrs={"device": self.device.device_id, "mode": "streaming"},
        )
        deploy_span = tele.start_span(
            "device.deploy", node=self.device.address, parent=root,
            attrs={"mode": "streaming"},
        )
        try:
            gateway = yield from self._resolve_gateway(gateway)
            failed: set[str] = set()
            while True:
                content = self.dispatcher.build_content(
                    stored, params, stops=stops, origin=gateway,
                    trace=deploy_span.context, task_id=task_id,
                    deadline=deadline,
                )
                packed = yield from self.dispatcher.pack_for(
                    content, gateway, trace=deploy_span.context
                )
                session = DeviceSession(
                    self.netmanager, gateway, self.config,
                    task_id=task_id, frame=packed.data,
                    trace=deploy_span.context,
                )
                try:
                    ticket, agent_id = yield from session.upload()
                    break
                except GatewayError:
                    # Same failover contract as deploy(): sessions are
                    # gateway-local, so moving on means a fresh session
                    # (and a re-pack) against the next candidate.  Bytes
                    # the dead session had already shipped are re-sent
                    # there — ledger them like any other restart.
                    if explicit:
                        raise
                    self.netmanager.count_restart(
                        session.bytes_sent, "session-failover"
                    )
                    failed.add(gateway)
                    gateway = yield from self.selector.select(exclude=failed)
            deploy_span.end(
                gateway=gateway, ticket=ticket, chunks=session.chunks_sent
            )
        finally:
            if deploy_span.open:
                deploy_span.end(status="error")
            if root.open and deploy_span.status != "ok":
                root.end(status="error")
        handle = DispatchHandle(
            ticket=ticket, agent_id=agent_id, gateway=gateway, service=service,
            trace_id=root.trace_id, task_id=task_id,
        )
        self.db.record_dispatch(
            DispatchRecord(
                ticket=ticket,
                agent_id=agent_id,
                gateway=gateway,
                service=service,
                status="dispatched",
                dispatched_at=self.device.sim.now,
            )
        )
        return StreamingDispatch(handle=handle, session=session)

    def collect_streaming(self, dispatch: StreamingDispatch) -> Generator:
        """Process: poll the session until the result is ready, then collect.

        Each poll drains partial results (accumulated on
        ``dispatch.session.partials``) and queued push events; the final
        document download goes through the unchanged :meth:`collect` path,
        so the returned :class:`CollectedResult` is byte-identical to a
        non-streaming collection of the same ticket.  Polls that come back
        empty stretch the next wait (up to 4× the base interval) — the
        agent is mid-hop and re-dialling the wireless link every base
        interval would buy nothing; a fresh partial snaps the interval
        back, since the next hop's answer is the one the user is watching
        for.  If the session expires gateway-side mid-poll, collection
        degrades gracefully to the classic :meth:`collect_poll` loop.
        """
        session = dispatch.session
        base = self.config.session_poll_interval_s
        interval = base
        for _ in range(self.config.max_polls):
            if session.result_ready:
                break
            try:
                poll = yield from session.poll()
            except GatewayError:
                # Session gone (TTL or a crash under the memory backend):
                # the ticket still exists — fall back to plain polling.
                result = yield from self.collect_poll(dispatch.handle)
                return result
            if poll.ready:
                break
            if poll.fresh or poll.events:
                interval = base
            else:
                interval = min(interval * 1.5, 4.0 * base)
            yield self.device.sim.timeout(interval)
        else:
            raise ResultNotReadyError(
                f"{dispatch.handle.ticket}: no result after "
                f"{self.config.max_polls} session polls"
            )
        result = yield from self.collect(dispatch.handle)
        yield from session.close()
        return result

    @staticmethod
    def streamed_partials(session: "DeviceSession") -> list[dict[str, Any]]:
        """Decode a session's accumulated partials into site results."""
        decoded = []
        for entry in session.partials:
            value = value_from_xml(parse_bytes(entry["payload"].encode("utf-8")))
            decoded.append(
                {"seq": entry["seq"], "site": entry["site"], "value": value}
            )
        return decoded

    # ------------------------------------------------------------ agent management
    def agent_status(self, handle: DispatchHandle) -> Generator:
        """Process (§3.6): query the agent's lifecycle state via the gateway."""
        doc = yield from self.netmanager.agent_op(handle.gateway, handle.ticket, "status")
        return doc.require_child("state").text

    def retract_agent(self, handle: DispatchHandle) -> Generator:
        """Process (§3.6): pull the agent back; a partial result document
        becomes available for collection afterwards."""
        doc = yield from self.netmanager.agent_op(handle.gateway, handle.ticket, "retract")
        self.db.update_dispatch_status(handle.ticket, "retracted")
        return doc.require_child("state").text

    def clone_agent(self, handle: DispatchHandle) -> Generator:
        """Process (§3.6): clone the agent; returns the clone's handle."""
        doc = yield from self.netmanager.agent_op(handle.gateway, handle.ticket, "clone")
        clone = DispatchHandle(
            ticket=doc.require_child("ticket").text,
            agent_id=doc.require_child("agent").text,
            gateway=handle.gateway,
            service=handle.service,
        )
        self.db.record_dispatch(
            DispatchRecord(
                ticket=clone.ticket,
                agent_id=clone.agent_id,
                gateway=clone.gateway,
                service=clone.service,
                status="dispatched",
                dispatched_at=self.device.sim.now,
            )
        )
        return clone

    def dispose_agent(self, handle: DispatchHandle) -> Generator:
        """Process (§3.6): dispose of the agent and its gateway workspace."""
        doc = yield from self.netmanager.agent_op(handle.gateway, handle.ticket, "dispose")
        self.db.update_dispatch_status(handle.ticket, "disposed")
        return doc.require_child("state").text

    # ------------------------------------------------------------ mobility
    def relocate(self, access_point: str, wireless) -> None:
        """Mobility (§3): re-home the device to a new access point.

        Tears down the wireless link, attaches at the new location, and
        invalidates the RTT cache so the next deployment re-runs the §3.5
        nearest-gateway discovery from the new position.
        """
        self.device.move_to(access_point, wireless)
        self.selector.invalidate_probes()

    # ------------------------------------------------------------ local queries
    def list_codes(self) -> list[StoredCode]:
        """Internal database management: stored MA applications."""
        return self.db.list_codes()

    def list_dispatches(self) -> list[DispatchRecord]:
        """Mobile agent management: every deployment this device made."""
        return self.db.list_dispatches()

    def stored_result(self, ticket: str) -> Any:
        """Re-read a collected result from the internal database."""
        doc = parse_bytes(self.db.get_result(ticket))
        return value_from_xml(doc.require_child("data"))
