"""Retry policy and per-gateway circuit breaker.

The paper sells the gateway tier as "a reliable network connection" for
devices on flaky wireless links; this module supplies the device-side
half of that promise.  A :class:`RetryPolicy` describes how the Network
Manager re-attempts a failed exchange — bounded attempts, exponential
backoff with *deterministic* jitter drawn from a named
:class:`~repro.simnet.rng.Stream` (so two runs with the same master seed
retry at byte-for-byte identical times), and per-purpose deadlines.  A
:class:`CircuitBreaker` remembers which gateways recently failed so
selection can skip them while they cool down, instead of burning the
wireless link on probes and uploads that will be refused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.kernel import Simulator
    from ..simnet.rng import Stream
    from .config import PDAgentConfig

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a device-side exchange is retried after transport failures.

    The delay before retry ``k`` (1-based) is::

        min(base_delay * backoff_factor**(k-1), max_delay) * (1 + jitter*U(-1,1))

    with the uniform draw taken from the caller's named RNG stream, so
    backoff timing is reproducible from the master seed.  ``deadline``
    bounds the whole logical exchange (attempts + backoff) in simulated
    seconds; ``per_purpose_deadlines`` overrides it for specific purposes
    (e.g. a tighter budget for probes than for PI uploads).
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    backoff_factor: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.1
    deadline: float = 60.0
    per_purpose_deadlines: Mapping[str, float] = field(default_factory=dict)
    #: Honour a 503 shed's Retry-After: sleep the advertised delay and retry
    #: the same exchange ("shed, retry later") instead of surfacing a
    #: GatewayError ("failed, give up").  Sheds never feed the breaker.
    honour_retry_after: bool = True
    #: Upper bound on a server-advertised Retry-After actually waited.
    retry_after_cap: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        for purpose, value in self.per_purpose_deadlines.items():
            if value <= 0:
                raise ValueError(f"deadline for {purpose!r} must be positive")
        if self.retry_after_cap <= 0:
            raise ValueError("retry_after_cap must be positive")

    @classmethod
    def from_config(cls, config: "PDAgentConfig") -> "RetryPolicy":
        return cls(
            max_attempts=config.retry_max_attempts,
            base_delay=config.retry_base_delay,
            backoff_factor=config.retry_backoff_factor,
            max_delay=config.retry_max_delay,
            jitter=config.retry_jitter,
            deadline=config.retry_deadline_s,
            honour_retry_after=config.retry_honour_retry_after,
            retry_after_cap=config.retry_after_cap_s,
        )

    def deadline_for(self, purpose: str) -> float:
        return self.per_purpose_deadlines.get(purpose, self.deadline)

    def backoff_delay(self, attempt: int, stream: Optional["Stream"] = None) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered from ``stream``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        nominal = min(
            self.base_delay * self.backoff_factor ** (attempt - 1), self.max_delay
        )
        if self.jitter and stream is not None:
            nominal *= 1.0 + self.jitter * stream.uniform(-1.0, 1.0)
        return nominal


class CircuitBreaker:
    """Per-gateway failure memory with a cooldown, on the simulated clock.

    ``threshold`` consecutive failures open the breaker for ``cooldown``
    simulated seconds; while open, :meth:`is_open` is True and selection
    skips the gateway.  When the cooldown lapses the breaker goes
    half-open: the next attempt is allowed, and a single further failure
    re-opens it immediately.  Any success closes it.
    """

    def __init__(
        self, sim: "Simulator", threshold: int = 2, cooldown: float = 30.0
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.sim = sim
        self.threshold = threshold
        self.cooldown = cooldown
        self.trips = 0
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}

    def record_failure(self, address: str) -> None:
        count = self._failures.get(address, 0) + 1
        self._failures[address] = count
        if count >= self.threshold and address not in self._opened_at:
            self._opened_at[address] = self.sim.now
            self.trips += 1

    def record_success(self, address: str) -> None:
        self._failures.pop(address, None)
        self._opened_at.pop(address, None)

    def is_open(self, address: str) -> bool:
        opened_at = self._opened_at.get(address)
        if opened_at is None:
            return False
        if self.sim.now - opened_at >= self.cooldown:
            # Half-open: let one attempt through; one more failure re-trips.
            del self._opened_at[address]
            self._failures[address] = self.threshold - 1
            return False
        return True

    def open_addresses(self) -> set[str]:
        return {addr for addr in list(self._opened_at) if self.is_open(addr)}
