"""Storage adapters for the gateway tier: tickets, dedup bindings, results.

The gateway originally kept all three in per-instance in-memory structures,
which makes its exactly-once guarantee *per process*: a crash loses the
dedup index (rebuilt best-effort from tickets) and a replaced gateway
process loses everything.  This module turns each structure into an adapter
with two backends:

* **memory** — the original semantics: a live dict of
  :class:`~repro.core.gateway.Ticket` objects, the volatile
  :class:`~repro.core.admission.DedupTable`, result frames held on the
  ticket.  ``persist()`` is a no-op; crash wipes dedup; restart rebuilds it
  from the surviving tickets.
* **sqlite** — an embedded durable store (stdlib ``sqlite3``, private
  ``:memory:`` database by default so simulations stay hermetic).  Every
  ticket mutation is written through to a row, dedup bindings and retained
  result frames live in their own tables, and a fresh store constructed
  over the same connection recovers the working set — the crash/restart
  and process-replacement recovery the fleet tier builds on.

Schema (one database per gateway)::

    tickets(ticket_id PK, agent_id, device_id, service, status,
            created_at, task_id, first_downloaded_at, superseded_by,
            children)
    dedup(task_id PK, ticket_id, expires_at)
    results(ticket_id PK, frame BLOB)
    sessions(session_id PK, device_id, task_id, total_bytes, digest,
             created_at, last_contact, ticket_id)
    session_chunks(session_id, offset, data BLOB)
    session_partials(ticket_id, seq, site, payload, at)

The kernel's :class:`~repro.simnet.primitives.Event` and telemetry spans are
deliberately *not* persisted: they are process state.  Recovered tickets
come back with ``completed=None``; the adopting gateway re-arms events and
watchdogs (see ``Gateway.__init__``).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

from .admission import DedupTable

if TYPE_CHECKING:  # pragma: no cover
    from .gateway import Ticket

__all__ = [
    "GatewayStorage",
    "SessionRecord",
    "InMemoryTicketStore",
    "SqliteTicketStore",
    "SqliteDedupTable",
    "InMemoryResultStore",
    "SqliteResultStore",
    "InMemorySessionStore",
    "SqliteSessionStore",
    "make_storage",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tickets (
    ticket_id TEXT PRIMARY KEY,
    agent_id TEXT NOT NULL DEFAULT '',
    device_id TEXT NOT NULL DEFAULT '',
    service TEXT NOT NULL DEFAULT '',
    status TEXT NOT NULL,
    created_at REAL NOT NULL,
    task_id TEXT NOT NULL DEFAULT '',
    first_downloaded_at REAL,
    superseded_by TEXT NOT NULL DEFAULT '',
    children TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS dedup (
    task_id TEXT PRIMARY KEY,
    ticket_id TEXT NOT NULL,
    expires_at REAL
);
CREATE TABLE IF NOT EXISTS results (
    ticket_id TEXT PRIMARY KEY,
    frame BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS sessions (
    session_id TEXT PRIMARY KEY,
    device_id TEXT NOT NULL DEFAULT '',
    task_id TEXT NOT NULL DEFAULT '',
    total_bytes INTEGER NOT NULL,
    digest TEXT NOT NULL DEFAULT '',
    created_at REAL NOT NULL,
    last_contact REAL NOT NULL DEFAULT 0,
    ticket_id TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS session_chunks (
    session_id TEXT NOT NULL,
    offset INTEGER NOT NULL,
    data BLOB NOT NULL,
    PRIMARY KEY (session_id, offset)
);
CREATE TABLE IF NOT EXISTS session_partials (
    ticket_id TEXT NOT NULL,
    seq INTEGER NOT NULL,
    site TEXT NOT NULL DEFAULT '',
    payload TEXT NOT NULL DEFAULT '',
    at REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (ticket_id, seq)
);
"""


def _seq_of(ticket_id: str, prefix: str) -> int:
    """The counter value inside ``<prefix><n>`` ids, or 0."""
    if not ticket_id.startswith(prefix):
        return 0
    try:
        return int(ticket_id[len(prefix):])
    except ValueError:
        return 0


# ------------------------------------------------------------- ticket stores
class InMemoryTicketStore:
    """The original gateway ticket dict behind the adapter interface."""

    durable = False

    def __init__(self) -> None:
        self._by_id: dict[str, "Ticket"] = {}

    def insert(self, ticket: "Ticket") -> None:
        self._by_id[ticket.ticket_id] = ticket

    def persist(self, ticket: "Ticket") -> None:
        """Record a mutation.  Memory tickets are live objects: no-op."""
        self._by_id.setdefault(ticket.ticket_id, ticket)

    def get(self, ticket_id: str) -> Optional["Ticket"]:
        return self._by_id.get(ticket_id)

    def delete(self, ticket_id: str) -> None:
        """Drop a ticket entirely (it migrated to another gateway)."""
        self._by_id.pop(ticket_id, None)

    def values(self) -> list["Ticket"]:
        return list(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, ticket_id: str) -> bool:
        return ticket_id in self._by_id

    def max_seq(self, prefix: str) -> int:
        """Highest minted counter under ``prefix`` (ticket-id continuity)."""
        return max((_seq_of(t, prefix) for t in self._by_id), default=0)


class SqliteTicketStore(InMemoryTicketStore):
    """Write-through ticket store: live working set + durable rows.

    Reads serve from the in-memory working set (tickets carry live kernel
    events); every ``insert``/``persist`` writes the durable columns
    through to the row, so a store constructed over a populated connection
    recovers the full ticket ledger.
    """

    durable = True

    def __init__(self, conn: sqlite3.Connection) -> None:
        super().__init__()
        self._conn = conn
        self._load()

    def _load(self) -> None:
        from .gateway import Ticket  # local import breaks the module cycle

        rows = self._conn.execute(
            "SELECT ticket_id, agent_id, device_id, service, status,"
            " created_at, task_id, first_downloaded_at, superseded_by,"
            " children FROM tickets ORDER BY ticket_id"
        ).fetchall()
        for row in rows:
            self._by_id[row[0]] = Ticket(
                ticket_id=row[0],
                agent_id=row[1],
                device_id=row[2],
                service=row[3],
                status=row[4],
                created_at=row[5],
                task_id=row[6],
                first_downloaded_at=row[7],
                superseded_by=row[8],
                children=[c for c in row[9].split(",") if c],
            )

    def _write(self, ticket: "Ticket") -> None:
        self._conn.execute(
            "INSERT INTO tickets (ticket_id, agent_id, device_id, service,"
            " status, created_at, task_id, first_downloaded_at,"
            " superseded_by, children)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(ticket_id) DO UPDATE SET agent_id=excluded.agent_id,"
            " status=excluded.status,"
            " first_downloaded_at=excluded.first_downloaded_at,"
            " superseded_by=excluded.superseded_by, children=excluded.children",
            (
                ticket.ticket_id,
                ticket.agent_id,
                ticket.device_id,
                ticket.service,
                ticket.status,
                ticket.created_at,
                ticket.task_id,
                ticket.first_downloaded_at,
                ticket.superseded_by,
                ",".join(ticket.children),
            ),
        )

    def insert(self, ticket: "Ticket") -> None:
        super().insert(ticket)
        self._write(ticket)

    def persist(self, ticket: "Ticket") -> None:
        super().persist(ticket)
        self._write(ticket)

    def delete(self, ticket_id: str) -> None:
        super().delete(ticket_id)
        self._conn.execute("DELETE FROM tickets WHERE ticket_id = ?", (ticket_id,))
        self._conn.execute("DELETE FROM results WHERE ticket_id = ?", (ticket_id,))


# ------------------------------------------------------------- dedup stores
class SqliteDedupTable:
    """Durable drop-in for :class:`~repro.core.admission.DedupTable`.

    Same interface, but bindings live in the ``dedup`` table and therefore
    survive :meth:`GatewayStorage.on_crash` — a restarted gateway answers
    retried uploads from the authoritative index instead of a best-effort
    rebuild.
    """

    durable = True

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def lookup(self, task_id: str, now: Optional[float] = None) -> Optional[str]:
        if not task_id:
            return None
        row = self._conn.execute(
            "SELECT ticket_id, expires_at FROM dedup WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        if row is None:
            return None
        ticket_id, expires_at = row
        if now is not None and expires_at is not None and now >= expires_at:
            self.forget(task_id)
            return None
        return ticket_id

    def bind(
        self, task_id: str, ticket_id: str, expires_at: Optional[float] = None
    ) -> None:
        if not task_id:
            return
        self._conn.execute(
            "INSERT INTO dedup (task_id, ticket_id, expires_at)"
            " VALUES (?, ?, ?) ON CONFLICT(task_id) DO UPDATE SET"
            " ticket_id=excluded.ticket_id, expires_at=excluded.expires_at",
            (task_id, ticket_id, expires_at),
        )

    def set_expiry(self, task_id: str, expires_at: Optional[float]) -> None:
        self._conn.execute(
            "UPDATE dedup SET expires_at = ? WHERE task_id = ?",
            (expires_at, task_id),
        )

    def purge_expired(self, now: float) -> int:
        cur = self._conn.execute(
            "DELETE FROM dedup WHERE expires_at IS NOT NULL AND expires_at <= ?",
            (now,),
        )
        return cur.rowcount

    def forget(self, task_id: str) -> None:
        self._conn.execute("DELETE FROM dedup WHERE task_id = ?", (task_id,))

    def clear(self) -> None:
        self._conn.execute("DELETE FROM dedup")

    def rebuild(self, tickets: Iterable[Any]) -> int:
        self.clear()
        n = 0
        for ticket in tickets:
            if ticket.task_id and ticket.status != "failed":
                self.bind(ticket.task_id, ticket.ticket_id)
                n += 1
        return n

    def items(self) -> list[tuple[str, str, Optional[float]]]:
        """Every binding as ``(task_id, ticket_id, expires_at)`` (drain scan)."""
        return [
            (row[0], row[1], row[2])
            for row in self._conn.execute(
                "SELECT task_id, ticket_id, expires_at FROM dedup ORDER BY task_id"
            )
        ]

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM dedup").fetchone()[0]


# ------------------------------------------------------------- result stores
class InMemoryResultStore:
    """Retained result frames; the memory backend mirrors the ticket field."""

    durable = False

    def __init__(self) -> None:
        self._frames: dict[str, bytes] = {}

    def put(self, ticket_id: str, frame: bytes) -> None:
        self._frames[ticket_id] = frame

    def get(self, ticket_id: str) -> Optional[bytes]:
        return self._frames.get(ticket_id)

    def drop(self, ticket_id: str) -> None:
        self._frames.pop(ticket_id, None)

    def __len__(self) -> int:
        return len(self._frames)


class SqliteResultStore:
    durable = True

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def put(self, ticket_id: str, frame: bytes) -> None:
        self._conn.execute(
            "INSERT INTO results (ticket_id, frame) VALUES (?, ?)"
            " ON CONFLICT(ticket_id) DO UPDATE SET frame=excluded.frame",
            (ticket_id, frame),
        )

    def get(self, ticket_id: str) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT frame FROM results WHERE ticket_id = ?", (ticket_id,)
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def drop(self, ticket_id: str) -> None:
        self._conn.execute("DELETE FROM results WHERE ticket_id = ?", (ticket_id,))

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]


# ------------------------------------------------------------- session stores
@dataclass
class SessionRecord:
    """Durable state of one open device↔gateway streaming session.

    Chunks and partial-result entries live beside the record in the store
    (keyed by session and ticket respectively); the record itself carries
    only what the resume handshake needs.
    """

    session_id: str
    device_id: str
    task_id: str
    total_bytes: int
    digest: str
    created_at: float
    last_contact: float = 0.0
    #: Set once the assembled frame was dispatched — a committed session
    #: answers re-sent final chunks with the existing ticket.
    ticket_id: str = ""


class InMemorySessionStore:
    """Volatile session state: dies with the gateway process."""

    durable = False

    def __init__(self) -> None:
        self._by_id: dict[str, SessionRecord] = {}
        self._chunks: dict[str, dict[int, bytes]] = {}
        self._partials: dict[str, list[dict]] = {}

    # -- sessions -----------------------------------------------------------
    def create(self, record: SessionRecord) -> None:
        self._by_id[record.session_id] = record
        self._chunks.setdefault(record.session_id, {})

    def persist(self, record: SessionRecord) -> None:
        """Record a mutation.  Memory records are live objects: no-op."""
        self._by_id.setdefault(record.session_id, record)

    def get(self, session_id: str) -> Optional[SessionRecord]:
        return self._by_id.get(session_id)

    def by_task(self, task_id: str) -> Optional[SessionRecord]:
        """The open session for ``task_id`` — the resume handshake's key."""
        if not task_id:
            return None
        for record in self._by_id.values():
            if record.task_id == task_id:
                return record
        return None

    def delete(self, session_id: str) -> None:
        self._by_id.pop(session_id, None)
        self._chunks.pop(session_id, None)

    def values(self) -> list[SessionRecord]:
        return list(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def max_seq(self, prefix: str) -> int:
        return max((_seq_of(s, prefix) for s in self._by_id), default=0)

    # -- chunks -------------------------------------------------------------
    def put_chunk(self, session_id: str, offset: int, data: bytes) -> None:
        self._chunks.setdefault(session_id, {})[offset] = data

    def chunks(self, session_id: str) -> dict[int, bytes]:
        return dict(self._chunks.get(session_id, {}))

    # -- partial-result streams --------------------------------------------
    def append_partial(self, ticket_id: str, entry: dict) -> None:
        self._partials.setdefault(ticket_id, []).append(entry)

    def partials(self, ticket_id: str) -> list[dict]:
        return list(self._partials.get(ticket_id, []))

    def drop_partials(self, ticket_id: str) -> None:
        self._partials.pop(ticket_id, None)

    def clear(self) -> None:
        """Crash: every open upload and partial stream is process state."""
        self._by_id.clear()
        self._chunks.clear()
        self._partials.clear()


class SqliteSessionStore(InMemorySessionStore):
    """Write-through session store: resume survives a gateway restart."""

    durable = True

    def __init__(self, conn: sqlite3.Connection) -> None:
        super().__init__()
        self._conn = conn
        self._load()

    def _load(self) -> None:
        for row in self._conn.execute(
            "SELECT session_id, device_id, task_id, total_bytes, digest,"
            " created_at, last_contact, ticket_id FROM sessions"
            " ORDER BY session_id"
        ).fetchall():
            self._by_id[row[0]] = SessionRecord(
                session_id=row[0],
                device_id=row[1],
                task_id=row[2],
                total_bytes=row[3],
                digest=row[4],
                created_at=row[5],
                last_contact=row[6],
                ticket_id=row[7],
            )
        for session_id, offset, data in self._conn.execute(
            "SELECT session_id, offset, data FROM session_chunks"
        ).fetchall():
            self._chunks.setdefault(session_id, {})[offset] = bytes(data)
        for ticket_id, seq, site, payload, at in self._conn.execute(
            "SELECT ticket_id, seq, site, payload, at FROM session_partials"
            " ORDER BY ticket_id, seq"
        ).fetchall():
            self._partials.setdefault(ticket_id, []).append(
                {"seq": seq, "site": site, "payload": payload, "at": at}
            )

    def _write(self, record: SessionRecord) -> None:
        self._conn.execute(
            "INSERT INTO sessions (session_id, device_id, task_id,"
            " total_bytes, digest, created_at, last_contact, ticket_id)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(session_id) DO UPDATE SET"
            " last_contact=excluded.last_contact, ticket_id=excluded.ticket_id",
            (
                record.session_id,
                record.device_id,
                record.task_id,
                record.total_bytes,
                record.digest,
                record.created_at,
                record.last_contact,
                record.ticket_id,
            ),
        )

    def create(self, record: SessionRecord) -> None:
        super().create(record)
        self._write(record)

    def persist(self, record: SessionRecord) -> None:
        super().persist(record)
        self._write(record)

    def delete(self, session_id: str) -> None:
        super().delete(session_id)
        self._conn.execute(
            "DELETE FROM sessions WHERE session_id = ?", (session_id,)
        )
        self._conn.execute(
            "DELETE FROM session_chunks WHERE session_id = ?", (session_id,)
        )

    def put_chunk(self, session_id: str, offset: int, data: bytes) -> None:
        super().put_chunk(session_id, offset, data)
        self._conn.execute(
            "INSERT INTO session_chunks (session_id, offset, data)"
            " VALUES (?, ?, ?) ON CONFLICT(session_id, offset)"
            " DO UPDATE SET data=excluded.data",
            (session_id, offset, data),
        )

    def append_partial(self, ticket_id: str, entry: dict) -> None:
        super().append_partial(ticket_id, entry)
        self._conn.execute(
            "INSERT OR REPLACE INTO session_partials"
            " (ticket_id, seq, site, payload, at) VALUES (?, ?, ?, ?, ?)",
            (
                ticket_id,
                entry.get("seq", 0),
                entry.get("site", ""),
                entry.get("payload", ""),
                entry.get("at", 0.0),
            ),
        )

    def drop_partials(self, ticket_id: str) -> None:
        super().drop_partials(ticket_id)
        self._conn.execute(
            "DELETE FROM session_partials WHERE ticket_id = ?", (ticket_id,)
        )


# ------------------------------------------------------------------- bundle
class GatewayStorage:
    """One gateway's stores plus the crash/restart contract."""

    def __init__(
        self, backend: str, tickets, dedup, results, sessions=None
    ) -> None:
        self.backend = backend
        self.tickets = tickets
        self.dedup = dedup
        self.results = results
        self.sessions = sessions if sessions is not None else InMemorySessionStore()

    @property
    def durable(self) -> bool:
        return bool(getattr(self.dedup, "durable", False))

    def on_crash(self) -> None:
        """Volatile state dies with the process; durable state survives."""
        if not self.durable:
            self.dedup.clear()
        if not getattr(self.sessions, "durable", False):
            self.sessions.clear()

    def on_restart(self) -> int:
        """Recover the dedup index; returns the number of usable bindings.

        Memory backend: best-effort rebuild from surviving tickets (the
        pre-storage behaviour).  Sqlite backend: the index never died — the
        binding count is reported as-is.  Session state follows the same
        split: memory sessions died with the process (devices restart their
        uploads from byte 0), sqlite sessions resume where they left off.
        """
        if self.durable:
            return len(self.dedup)
        return self.dedup.rebuild(self.tickets.values())


def make_storage(
    backend: str = "memory",
    conn: Optional[sqlite3.Connection] = None,
    path: str = "",
) -> GatewayStorage:
    """Build a :class:`GatewayStorage` bundle for ``backend``.

    ``sqlite`` with an explicit ``conn`` attaches to (and recovers from)
    an existing database — the process-replacement path; otherwise a
    private database is opened at ``path`` (``""`` → ``:memory:``).
    """
    if backend == "memory":
        return GatewayStorage(
            "memory",
            InMemoryTicketStore(),
            DedupTable(),
            InMemoryResultStore(),
            InMemorySessionStore(),
        )
    if backend != "sqlite":
        raise ValueError(f"unknown storage backend {backend!r}")
    if conn is None:
        conn = sqlite3.connect(path or ":memory:")
    conn.executescript(_SCHEMA)
    tickets = SqliteTicketStore(conn)
    results = SqliteResultStore(conn)
    # Recovered tickets get their retained result frames back; everything
    # else (events, watchdogs) is re-armed by the adopting gateway.
    for ticket in tickets.values():
        if ticket.result_frame is None:
            ticket.result_frame = results.get(ticket.ticket_id)
    return GatewayStorage(
        "sqlite",
        tickets,
        SqliteDedupTable(conn),
        results,
        SqliteSessionStore(conn),
    )
