"""The central server: gateway address-list distribution (§3.5).

"Initially, PDAgent will download a list of gateway addresses from the
central server.  This list will be used until the Round Trip Time from the
nearest gateway found in the list exceeds the pre-defined threshold.  In
this case, the PDAgent will request a new address list from [the] central
server or through one [of] the gateways."

The central server also distributes gateway **public keys** with the list
(the trust anchor of §3.4: devices learn keys from the central authority,
not from the gateways themselves).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..crypto import KeyVault, PublicKey
from ..xmlcodec import Element, parse_bytes, write_bytes
from ..simnet.http import HttpResponse, HttpServer, request

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.topology import Network

__all__ = ["CentralServer", "GatewayEntry", "fetch_gateway_list"]

CENTRAL_PORT = 8080


class GatewayEntry:
    """One row of the address list: address + public key."""

    __slots__ = ("address", "public_key")

    def __init__(self, address: str, public_key: PublicKey) -> None:
        self.address = address
        self.public_key = public_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GatewayEntry {self.address!r}>"


class CentralServer:
    """Authoritative registry of trusted gateways."""

    def __init__(self, network: "Network", address: str, vault: KeyVault) -> None:
        self.network = network
        self.node = network.node(address)
        self.vault = vault
        self._gateways: list[str] = []
        self.http = HttpServer(self.node, port=CENTRAL_PORT, service_time=0.002)
        self.http.route("/gateways", self._handle_list)

    @property
    def address(self) -> str:
        return self.node.address

    def register_gateway(self, gateway_address: str) -> None:
        """Enrol a gateway (its keypair comes from the shared vault)."""
        if gateway_address in self._gateways:
            raise ValueError(f"gateway {gateway_address!r} already registered")
        self._gateways.append(gateway_address)

    def deregister_gateway(self, gateway_address: str) -> None:
        self._gateways.remove(gateway_address)

    def gateway_addresses(self) -> list[str]:
        return list(self._gateways)

    def _handle_list(self, req) -> HttpResponse:
        doc = Element("gateways")
        for address in self._gateways:
            key = self.vault.public_key(address)
            entry = doc.add("gateway", {"address": address})
            entry.add("n", text=str(key.n))
            entry.add("e", text=str(key.e))
        body = write_bytes(doc)
        return HttpResponse(200, body=body, body_size=len(body))


def parse_gateway_list(body: bytes) -> list[GatewayEntry]:
    """Decode the /gateways response document."""
    doc = parse_bytes(body)
    if doc.tag != "gateways":
        raise ValueError(f"expected <gateways>, got <{doc.tag}>")
    entries = []
    for elem in doc.findall("gateway"):
        entries.append(
            GatewayEntry(
                address=elem.require("address"),
                public_key=PublicKey(
                    n=int(elem.require_child("n").text),
                    e=int(elem.require_child("e").text),
                ),
            )
        )
    return entries


def fetch_gateway_list(
    network: "Network", client: str, central: str
) -> Generator:
    """Process: download and decode the address list from the central server."""
    resp = yield from request(
        network,
        client,
        central,
        "GET",
        "/gateways",
        port=CENTRAL_PORT,
        purpose="gateway-list",
    )
    return parse_gateway_list(resp.body)
