"""The Agent Dispatcher: offline PI preparation on the device (§3.2).

"The Agent Dispatcher will collect the agent code and parameters, generate a
unique key from the assigned code id, encode them into a XML document, and
pass it on as a single package … to the Network Manager."

Everything here happens **offline** — the device is not connected while the
user fills in parameters and the dispatcher packs.  The packing CPU time is
charged to the device (scaled by its cpu factor), which is how the
"compression requires only a small amount of CPU time" claim is measured.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..crypto import derive_dispatch_key
from ..mas.itinerary import Itinerary, Stop
from ..telemetry.spans import SpanContext
from .config import PDAgentConfig
from .device_db import InternalDatabase, StoredCode
from .errors import DeploymentError
from .packed_info import PackedInfo, PIContent, pack
from .security import DeviceSecurity

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device

__all__ = ["AgentDispatcher"]


class AgentDispatcher:
    """Builds Packed Information from stored code + user parameters."""

    def __init__(
        self,
        device: "Device",
        db: InternalDatabase,
        config: PDAgentConfig,
        security: DeviceSecurity,
    ) -> None:
        self.device = device
        self.db = db
        self.config = config
        self.security = security
        self._nonce_counter = itertools.count(1)
        self._task_counter = itertools.count(1)

    def _next_nonce(self) -> str:
        return f"{self.device.device_id}-n{next(self._nonce_counter)}"

    def new_task_id(self) -> str:
        """Fresh idempotency key for one *logical* task.

        Unlike the nonce — fresh per pack, so a replayed frame is still
        detectable — the task id stays fixed across every retry and
        re-pack of the same user action, which is what lets the gateway
        dedup instead of double-dispatching.
        """
        return f"{self.device.device_id}-task-{next(self._task_counter)}"

    def build_content(
        self,
        stored: StoredCode,
        params: dict[str, Any],
        stops: Optional[list[Stop]] = None,
        origin: str = "",
        trace: Optional[SpanContext] = None,
        task_id: str = "",
        deadline: float = 0.0,
    ) -> PIContent:
        """Assemble the logical PI (validates params against the schema)."""
        schema = stored.code.param_schema
        missing = [name for name in schema if name not in params]
        if missing:
            raise DeploymentError(
                f"service {stored.code.service!r} missing params {missing}"
            )
        nonce = self._next_nonce()
        key = derive_dispatch_key(stored.code_id, self.device.device_id, nonce)
        itinerary = None
        if stops is not None:
            if not origin:
                raise DeploymentError("an itinerary needs the gateway origin")
            itinerary = Itinerary(origin=origin, stops=list(stops))
        return PIContent(
            code_id=stored.code_id,
            device_id=self.device.device_id,
            service=stored.code.service,
            agent_class=stored.code.agent_class,
            dispatch_key=key,
            nonce=nonce,
            params=dict(params),
            itinerary=itinerary,
            code_body=stored.code.payload(),
            task_id=task_id,
            trace_id=trace.trace_id if trace is not None else "",
            trace_parent=trace.span_id if trace is not None else "",
            deadline=deadline,
        )

    def pack_for(
        self,
        content: PIContent,
        gateway: str,
        trace: Optional[SpanContext] = None,
    ) -> Generator:
        """Process: run the packing pipeline, charging device CPU time.

        Returns the :class:`~repro.core.packed_info.PackedInfo`.
        """
        span = self.device.network.telemetry.start_span(
            "device.pack", node=self.device.address, parent=trace
        )
        packed: PackedInfo = pack(content, self.config, self.security, gateway)
        yield self.device.compute(self.config.pack_cost(packed.xml_size))
        self.device.network.tracer.record("pi_wire_size", packed.wire_size)
        span.end(
            xml_bytes=packed.xml_size,
            compressed_bytes=packed.compressed_size,
            wire_bytes=packed.wire_size,
        )
        return packed
