"""High-performance service management: nearest-gateway selection (§3.5).

"The PDAgent platform will find the nearest Gateway by sending 1-bit data to
all the gateways on the address list and calculating which Gateway takes the
shortest Round Trip Time.  The PDAgent platform will send the Packed
Information to the Gateway with the shortest RTT."

:class:`GatewaySelector` implements that probe-all/pick-min policy, the RTT
cache, and the threshold-driven address-list refresh.  Alternative policies
(``first``, ``random``, ``round_robin``) exist for the selection ablation
(bench A1).

RTT probing: probes are connectionless datagrams (they do not open a
transport connection and therefore do not count toward "internet connection
time" — matching the paper's model where probe traffic is negligible 1-bit
data), but their latency *is* simulated, so probing is not free in
wall-clock terms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..crypto import KeyRing
from ..simnet.topology import NoRouteError
from ..simnet.transport import TransportError
from .config import PDAgentConfig
from .errors import NoGatewayAvailableError
from .registry import GatewayEntry, fetch_gateway_list
from .retry import CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.topology import Network

__all__ = ["GatewaySelector", "ProbeResult"]


class ProbeResult:
    """One gateway's measured RTT."""

    __slots__ = ("address", "rtt", "measured_at")

    def __init__(self, address: str, rtt: float, measured_at: float) -> None:
        self.address = address
        self.rtt = rtt
        self.measured_at = measured_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProbeResult {self.address!r} rtt={self.rtt:.4f}>"


class GatewaySelector:
    """Maintains the address list and picks the upload target."""

    def __init__(
        self,
        network: "Network",
        device_address: str,
        central_address: str,
        config: PDAgentConfig,
        keyring: KeyRing,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.network = network
        self.device_address = device_address
        self.central_address = central_address
        self.config = config
        self.keyring = keyring
        self.breaker = breaker
        #: Fleet membership view (installed at deployment build when the
        #: fleet tier is on).  Members not in a healthy state are hard-
        #: excluded from selection; ``None`` means no health signal.
        self.membership = None
        self._entries: list[GatewayEntry] = []
        self._probes: dict[str, ProbeResult] = {}
        # Bumped by invalidate_probes(); probe sweeps that straddle a bump
        # measured a topology that no longer exists and are discarded.
        self._probe_generation = 0
        self._round_robin_index = 0
        self.list_refreshes = 0
        self.probes_sent = 0

    # ------------------------------------------------------------ address list
    @property
    def has_list(self) -> bool:
        return bool(self._entries)

    def gateway_addresses(self) -> list[str]:
        return [e.address for e in self._entries]

    def install_list(self, entries: list[GatewayEntry]) -> None:
        """Adopt a downloaded address list (also learns public keys)."""
        if not entries:
            raise NoGatewayAvailableError("central server returned no gateways")
        self._entries = list(entries)
        self._probes.clear()
        for entry in entries:
            self.keyring.add(entry.address, entry.public_key)

    def refresh_list(self) -> Generator:
        """Process: (re-)download the address list from the central server.

        Transport failures (no route while the radio link is down, the
        central server resetting mid-download) surface as
        :class:`NoGatewayAvailableError` — callers live inside the platform
        error model and must never see raw simnet exceptions.
        """
        try:
            entries = yield from fetch_gateway_list(
                self.network, self.device_address, self.central_address
            )
        except (NoRouteError, TransportError) as exc:
            raise NoGatewayAvailableError(
                f"central server unreachable: {exc}"
            ) from exc
        self.install_list(entries)
        self.list_refreshes += 1
        return entries

    # ------------------------------------------------------------ probing
    def probe_all(self) -> Generator:
        """Process: ping every listed gateway; returns sorted ProbeResults.

        A sweep that straddles an :meth:`invalidate_probes` call (handover)
        measured a mix of old- and new-topology legs; its results are
        returned but *not* cached, so the stale snapshot cannot poison
        later selections.
        """
        sim = self.network.sim
        if not self._entries:
            raise NoGatewayAvailableError("no address list installed")
        # Snapshot the entry list: a concurrent refresh must not desync the
        # address/process pairing below.
        entries = list(self._entries)
        generation = self._probe_generation
        # Launch all probes concurrently — the paper sends to *all* gateways.
        processes = [
            sim.process(
                self._safe_ping(entry.address),
                name=f"probe:{entry.address}",
            )
            for entry in entries
        ]
        self.probes_sent += len(processes)
        results = yield sim.all_of(processes)
        probes = []
        for entry, proc in zip(entries, processes):
            probe = ProbeResult(entry.address, results[proc], sim.now)
            probes.append(probe)
        if generation == self._probe_generation:
            for probe in probes:
                self._probes[probe.address] = probe
        probes.sort(key=lambda p: p.rtt)
        return probes

    def _safe_ping(self, address: str) -> Generator:
        """Process: one RTT probe; an unreachable gateway measures as +inf.

        A partitioned gateway must not make the whole probe sweep fail —
        it just sorts last and is never selected.
        """
        try:
            rtt = yield from self.network.ping(
                self.device_address, address, self.config.probe_size
            )
        except NoRouteError:
            self.network.tracer.count("probes_unreachable")
            return float("inf")
        return rtt

    def _cached_probes(self) -> list[ProbeResult]:
        """Fresh cached probes, sorted by RTT."""
        now = self.network.sim.now
        fresh = [
            p
            for p in self._probes.values()
            if now - p.measured_at <= self.config.rtt_cache_ttl
        ]
        fresh.sort(key=lambda p: p.rtt)
        return fresh

    # ------------------------------------------------------------ selection
    def select(
        self,
        exclude: Optional[set[str]] = None,
        prefer: Optional[str] = None,
    ) -> Generator:
        """Process: pick the upload gateway per the configured policy.

        Ensures an address list is present (downloading one on first use),
        probes when the policy needs RTTs, and refreshes the list when even
        the nearest gateway exceeds the RTT threshold.  ``exclude`` removes
        gateways that just failed (the deploy failover path); gateways whose
        circuit breaker is open are skipped the same way, unless that would
        leave no candidate at all.

        ``prefer`` short-circuits the policy when that address is a viable
        candidate: re-selecting during collect after a link flap should go
        back to the gateway that holds the ticket, not to whichever is
        nearest now — a preferred gateway that is excluded or breaker-open
        falls through to the normal policy.
        """
        if not self._entries:
            yield from self.refresh_list()
        exclude = set(exclude or ())
        if prefer is not None and not self._healthy(prefer):
            # A draining/down origin cannot answer; its ring successor holds
            # (or relays to) the migrated state — prefer that instead.
            redirected = (
                self.membership.successor(prefer) if self.membership else ""
            )
            self.network.tracer.count("select.prefer_redirected")
            prefer = redirected or None
        skip, entries = self._candidates(exclude)
        if prefer is not None:
            for entry in entries:
                if entry.address == prefer:
                    return prefer
        policy = self.config.selection_policy
        if policy == "first":
            return entries[0].address
        if policy == "random":
            stream = self.network.streams.get(f"select:{self.device_address}")
            return stream.choice([e.address for e in entries])
        if policy == "round_robin":
            entry = entries[self._round_robin_index % len(entries)]
            self._round_robin_index += 1
            return entry.address
        # nearest (the paper's policy).  Every pass through the loop re-reads
        # the probe cache *and* the skip set from scratch: both can change
        # while a probe sweep or list refresh is in flight (handover
        # invalidation, a circuit breaker opening), so a snapshot taken
        # before a yield point must never decide the selection.
        refreshed = False
        for _attempt in range(4):
            skip, entries = self._candidates(exclude)
            probes = [p for p in self._cached_probes() if p.address not in skip]
            if len(probes) < len(entries):
                yield from self.probe_all()
                # Re-read the cache rather than trusting the sweep's return
                # value: a handover mid-sweep invalidated (and discarded)
                # those measurements, and the breaker set may have moved.
                continue
            best = probes[0]
            if not refreshed and best.rtt > self.config.rtt_threshold and not skip:
                # Even the nearest gateway is too far: fetch a fresh list and
                # re-probe once; accept the best we can get after that.
                refreshed = True
                yield from self.refresh_list()
                yield from self.probe_all()
                continue
            if best.rtt == float("inf"):
                raise NoGatewayAvailableError("no candidate gateway is reachable")
            return best.address
        raise NoGatewayAvailableError(
            "gateway discovery could not settle: probe sweeps kept coming "
            "back empty or invalidated (concurrent handovers/refreshes)"
        )

    def _healthy(self, address: str) -> bool:
        """False only when the membership view marks ``address`` unhealthy.

        Unknown addresses (no view installed, or not a fleet member) are
        healthy — absence of signal is not a verdict.
        """
        if self.membership is None:
            return True
        return self.membership.state(address) in ("", "active")

    def _candidates(self, exclude: set[str]) -> tuple[set[str], list[GatewayEntry]]:
        """Current ``(skip, candidate entries)`` honouring breaker + health.

        Membership-unhealthy members (draining/down/joining) join the *hard*
        exclude: unlike the heuristic breaker, the view is authoritative —
        a draining gateway refuses every upload, so the all-breaker-open
        fallback must never resurrect one.
        """
        exclude = exclude | {
            e.address for e in self._entries if not self._healthy(e.address)
        }
        skip = set(exclude)
        if self.breaker is not None:
            skip |= self.breaker.open_addresses()
        entries = [e for e in self._entries if e.address not in skip]
        if not entries and skip != exclude:
            # Every remaining candidate is breaker-open: trying a suspect
            # gateway beats refusing outright, so ignore the breaker here.
            skip = set(exclude)
            entries = [e for e in self._entries if e.address not in skip]
        if not entries:
            raise NoGatewayAvailableError(
                f"all {len(self._entries)} gateways excluded/unreachable"
            )
        return skip, entries

    def last_rtt(self, address: str) -> Optional[float]:
        probe = self._probes.get(address)
        return probe.rtt if probe else None

    def invalidate_probes(self) -> None:
        """Drop cached RTTs (after a handover the old values are garbage).

        Also marks any in-flight probe sweep as stale: its measurements mix
        pre- and post-handover topologies and must not enter the cache.
        """
        self._probes.clear()
        self._probe_generation += 1
