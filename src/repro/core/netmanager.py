"""The Network Manager: all wireless traffic of the platform (§3.2, §3.6).

"Network management is responsible [for] managing all the activities that
require wireless network connections from wireless devices to gateways, such
as downloading mobile agent code and upload[ing] packed information."

Every method is a process performing one logical HTTP exchange — the
device is online only for the duration of that exchange, which is what the
connection-time ledger measures.  Transport-level failures (refused or
unreachable gateway, persistent wireless loss) are retried under the
platform's :class:`~repro.core.retry.RetryPolicy` with deterministic
backoff jitter from the device's named RNG stream; deliberate 503 load
sheds are waited out per the gateway's ``Retry-After`` without feeding
the circuit breaker; other application-level failures (HTTP error
statuses) are not retried.  Either way, exhausted exchanges surface
uniformly as :class:`~repro.core.errors.GatewayError` so callers —
notably the deploy failover — can treat the gateway as bad.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..simnet.http import HttpRequest, HttpResponse, request
from ..simnet.topology import NoRouteError
from ..simnet.transport import TransportError, connect
from ..telemetry.spans import SpanContext
from ..xmlcodec import Element, parse_bytes, write_bytes
from .errors import (
    DeadlineExpiredError,
    GatewayError,
    GatewayOverloadedError,
    ResultExpiredError,
    ResultNotReadyError,
)
from .gateway import GATEWAY_PORT, TASK_ID_HEADER
from .retry import CircuitBreaker, RetryPolicy
from .session import HOPS_REMAINING_HEADER, HOPS_VISITED_HEADER

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device

__all__ = ["NetworkManager", "SessionChannel"]

#: Failures worth retrying: the gateway process may be restarting, the
#: wireless link may be in an outage window.  Application-level rejections
#: other than a 503 shed are deterministic and fail immediately.
_RETRIABLE = (TransportError, NoRouteError)


class NetworkManager:
    """Device-side HTTP client for gateway interactions."""

    def __init__(
        self,
        device: "Device",
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.device = device
        self.network = device.network
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker
        self._retry_stream = self.network.streams.get(f"retry:{device.device_id}")
        self.uploads = 0
        self.downloads = 0
        self.retries = 0
        #: 503 sheds waited out (Retry-After honoured) — not failures.
        self.shed_waits = 0
        #: Request-body bytes sent more than once because an exchange was
        #: retried (transport failure or shed).  The streaming-vs-baseline
        #: experiments compare this ledger: a resumed chunk upload re-sends
        #: one chunk where a store-and-forward restart re-sends the frame.
        self.retransmitted_bytes = 0
        #: ``(purpose, attempt, backoff_delay)`` per retry, in order — the
        #: reproducibility contract: same master seed ⇒ identical log.
        self.retry_log: list[tuple[str, int, float]] = []

    # ------------------------------------------------------------ subscription
    def download_code(
        self, gateway: str, service: str, trace: Optional[SpanContext] = None
    ) -> Generator:
        """Process: §3.1 code download; returns the protected code frame."""
        doc = Element("subscribe", {"service": service, "device": self.device.device_id})
        body = write_bytes(doc)
        resp = yield from self._exchange(
            gateway, "POST", "/subscribe", body, "subscribe", trace=trace
        )
        self.downloads += 1
        return resp.body

    # ------------------------------------------------------------ deployment
    def upload_pi(
        self,
        gateway: str,
        frame: bytes,
        trace: Optional[SpanContext] = None,
        task_id: str = "",
    ) -> Generator:
        """Process: §3.2 PI upload; returns ``(ticket_id, agent_id)``.

        ``task_id`` (also packed inside the PI) rides the request headers so
        the gateway can dedup a retried upload *before* paying the unpack
        cost — the exactly-once fast path.
        """
        headers = {TASK_ID_HEADER: task_id} if task_id else None
        resp = yield from self._exchange(
            gateway, "POST", "/pi", frame, "upload-pi", trace=trace,
            headers=headers,
        )
        self.uploads += 1
        doc = parse_bytes(resp.body)
        return doc.require_child("ticket").text, doc.require_child("agent").text

    # ------------------------------------------------------------ results
    def download_result(
        self,
        gateway: str,
        ticket_id: str,
        origin: Optional[str] = None,
        trace: Optional[SpanContext] = None,
    ) -> Generator:
        """Process: §3.3 result download; returns the protected result frame.

        When ``origin`` names a different gateway than ``gateway``, the
        request uses the relay path: the contacted gateway fetches the
        document from the dispatching gateway over the wired network
        (mobility extension — the user collects wherever they now are).

        Raises :class:`ResultNotReadyError` on a 204 (the agent is still
        travelling) so callers can implement their own polling policy.
        """
        if origin and origin != gateway:
            path = f"/relay/{origin}/{ticket_id}"
        else:
            path = f"/result/{ticket_id}"
        resp = yield from self._exchange(
            gateway, "GET", path, None, "download-result",
            raise_for_status=False, trace=trace,
        )
        if resp.status == 204:
            raise ResultNotReadyError(
                ticket_id,
                hops_visited=_int_header(resp, HOPS_VISITED_HEADER),
                hops_remaining=_int_header(resp, HOPS_REMAINING_HEADER),
            )
        if resp.status == 410:
            raise ResultExpiredError(
                f"result for {ticket_id} expired: {resp.reason}"
            )
        if not resp.ok:
            raise GatewayError(f"result download failed: {resp.status} {resp.reason}")
        self.downloads += 1
        return resp.body

    # ------------------------------------------------------------ agent ops
    def agent_op(
        self, gateway: str, ticket_id: str, op: str, trace: Optional[SpanContext] = None
    ) -> Generator:
        """Process: §3.6 remote agent management; returns the reply element."""
        doc = Element("agentop", {"op": op, "ticket": ticket_id})
        body = write_bytes(doc)
        resp = yield from self._exchange(
            gateway, "POST", "/agent", body, f"agent-{op}", trace=trace
        )
        return parse_bytes(resp.body)

    # ------------------------------------------------------------ streaming sessions
    def session_exchange(
        self,
        gateway: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        purpose: str = "session",
        headers: Optional[dict[str, str]] = None,
        trace: Optional[SpanContext] = None,
    ) -> Generator:
        """Process: one streaming-session exchange; returns the raw response.

        The session protocol answers "normal" non-2xx statuses (409 offset
        resync, 404 expired session) that the device-side session machine
        interprets itself, so status checking is left to the caller; only
        transport failures and 503 sheds are retried here as usual.
        """
        resp = yield from self._exchange(
            gateway, method, path, body, purpose,
            raise_for_status=False, trace=trace, headers=headers,
        )
        return resp

    def open_session_channel(
        self, gateway: str, trace: Optional[SpanContext] = None
    ) -> Generator:
        """Process: open one persistent connection for pipelined session I/O.

        A chunked upload over per-chunk HTTP/1.0 exchanges would pay the
        wireless link's connection setup (GPRS channel acquisition plus a
        handshake RTT — seconds, not milliseconds) once *per chunk*,
        tripling upload latency against the single-shot ``/pi`` path.  The
        gateway's HTTP server already serves keep-alive pipelining, so the
        session layer rides one connection per burst: setup is paid once,
        and each chunk costs only its own transfer time plus the ack
        round trip.  Resume granularity is unchanged — every chunk is
        individually acknowledged, so a mid-burst link cut loses at most
        the chunk in flight.

        Returns a :class:`SessionChannel`.  A connect failure feeds the
        circuit breaker and surfaces as :class:`GatewayError`, exactly
        like a failed exchange.
        """
        span = self.network.telemetry.start_span(
            "net.session-stream",
            node=self.device.address,
            parent=trace,
            attrs={"gateway": gateway},
        )
        try:
            sock = yield from connect(
                self.network, self.device.address, gateway,
                GATEWAY_PORT, purpose="session-stream",
            )
        except _RETRIABLE as exc:
            if self.breaker is not None:
                self.breaker.record_failure(gateway)
            span.end(status="error")
            raise GatewayError(
                f"session channel to {gateway} failed: {exc}"
            ) from exc
        return SessionChannel(self, gateway, sock, span)

    # ------------------------------------------------------------ internals
    def _exchange(
        self,
        gateway: str,
        method: str,
        path: str,
        body: Optional[bytes],
        purpose: str,
        raise_for_status: bool = True,
        trace: Optional[SpanContext] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> Generator:
        """One logical exchange: attempt, retry with backoff, or GatewayError.

        Retries transport-class failures (`TransportError`, `NoRouteError`)
        — the kind a restarted gateway or a healed link cures — and 503
        load sheds, which are waited out for the gateway's advertised
        ``Retry-After``.  A shed is "come back later", not a fault: it is
        **breaker-neutral**, so a healthy-but-busy gateway is never
        circuit-broken out of the selection pool.  Other HTTP rejections
        are deterministic and fail immediately.

        The exchange runs under a ``net.<purpose>`` span; its context rides
        the request headers, so the gateway parents its own spans on it.
        """
        sim = self.network.sim
        policy = self.retry_policy
        deadline = sim.now + policy.deadline_for(purpose)
        attempt = 1
        span = self.network.telemetry.start_span(
            f"net.{purpose}",
            node=self.device.address,
            parent=trace,
            attrs={"gateway": gateway, "method": method, "path": path},
        )
        try:
            while True:
                wire_headers = span.context.to_headers()
                if headers:
                    wire_headers.update(headers)
                try:
                    resp: HttpResponse = yield from request(
                        self.network,
                        self.device.address,
                        gateway,
                        method,
                        path,
                        body=body,
                        body_size=len(body) if body is not None else 0,
                        port=GATEWAY_PORT,
                        purpose=purpose,
                        raise_for_status=False,
                        headers=wire_headers,
                    )
                except _RETRIABLE as exc:
                    if self.breaker is not None:
                        self.breaker.record_failure(gateway)
                    if attempt >= policy.max_attempts:
                        raise GatewayError(
                            f"{purpose} failed after {attempt} attempts: {exc}"
                        ) from exc
                    delay = policy.backoff_delay(attempt, self._retry_stream)
                    if sim.now + delay > deadline:
                        raise GatewayError(
                            f"{purpose} failed: retry deadline exceeded "
                            f"after {attempt} attempts: {exc}"
                        ) from exc
                    self.retries += 1
                    self.retry_log.append((purpose, attempt, delay))
                    self.network.tracer.count("device_retries")
                    self._count_retransmit(body, purpose)
                    yield sim.timeout(delay)
                    attempt += 1
                    continue
                if resp.status == 503 and resp.headers.get("x-fleet-successor"):
                    # Draining gateway: waiting out Retry-After and re-trying
                    # the SAME gateway would spin until the deadline — it is
                    # leaving, not busy.  Fail fast (breaker-neutral: the
                    # refusal is deliberate) so the caller's failover
                    # re-selects through the health-aware selector.
                    self.network.tracer.count("device_drain_redirects")
                    raise GatewayOverloadedError(
                        f"{purpose} refused by draining {gateway} "
                        f"(successor {resp.headers['x-fleet-successor']})",
                        retry_after=resp.retry_after or 0.0,
                    )
                if resp.status == 503 and policy.honour_retry_after:
                    delay = resp.retry_after
                    if delay is None:
                        delay = policy.backoff_delay(attempt, self._retry_stream)
                    delay = min(delay, policy.retry_after_cap)
                    if attempt >= policy.max_attempts or sim.now + delay > deadline:
                        raise GatewayOverloadedError(
                            f"{purpose} shed by {gateway} after {attempt} "
                            f"attempt(s): {resp.reason}",
                            retry_after=delay,
                        )
                    self.shed_waits += 1
                    self.retry_log.append((purpose, attempt, delay))
                    self.network.tracer.count("device_shed_waits")
                    self._count_retransmit(body, purpose)
                    yield sim.timeout(delay)
                    attempt += 1
                    continue
                if raise_for_status and not resp.ok:
                    if resp.headers.get("x-deadline-expired"):
                        # Deterministic refusal, not a gateway fault: the
                        # deadline will not un-expire anywhere, so neither
                        # retry nor failover nor a breaker strike applies.
                        span.end(status="deadline-expired")
                        raise DeadlineExpiredError(
                            f"{purpose} refused: {resp.reason}"
                        )
                    if self.breaker is not None:
                        self.breaker.record_failure(gateway)
                    raise GatewayError(
                        f"{purpose} failed: HTTP {resp.status}: {resp.reason}"
                    )
                if self.breaker is not None:
                    self.breaker.record_success(gateway)
                span.end(attempts=attempt)
                return resp
        finally:
            # Safety net: a raise above (or an interrupt thrown into the
            # process) must not leave the exchange span dangling.
            if span.open:
                span.end(status="error", attempts=attempt)

    def _count_retransmit(self, body: Optional[bytes], purpose: str) -> None:
        """Ledger: the next attempt re-sends ``body`` from byte zero."""
        self.count_restart(len(body) if body is not None else 0, purpose)

    def count_restart(self, nbytes: int, purpose: str) -> None:
        """Ledger: ``nbytes`` already-sent payload bytes will be re-sent.

        Public so the session layer can account resume gaps (bytes the
        device had put on the wire but the gateway never acknowledged) and
        the deploy failover can account full-frame restarts — keeping the
        ``retransmitted_bytes`` ledger comparable across the streaming and
        store-and-forward upload paths.
        """
        if nbytes > 0:
            self.retransmitted_bytes += nbytes
            self.network.tracer.count("device_retransmit_bytes", nbytes)


class SessionChannel:
    """One persistent device→gateway connection for pipelined session traffic.

    Created by :meth:`NetworkManager.open_session_channel`.  Each
    :meth:`exchange` is a single send/receive on the shared connection —
    no internal retry: a transport failure means the connection (and with
    it the burst) is dead, and the device-side session machine decides
    whether to back off and resume.  Successes and failures feed the
    shared circuit breaker like any other exchange.
    """

    def __init__(
        self, net: "NetworkManager", gateway: str, sock, span
    ) -> None:
        self.net = net
        self.gateway = gateway
        self._sock = sock
        self._span = span
        self.exchanges = 0

    @property
    def sim(self):
        return self.net.network.sim

    def exchange(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> Generator:
        """Process: one request/response round trip on the channel."""
        wire_headers = self._span.context.to_headers()
        if headers:
            wire_headers.update(headers)
        req = HttpRequest(
            method=method,
            path=path,
            body=body,
            body_size=len(body) if body is not None else 0,
            client=self.net.device.address,
            headers=wire_headers,
        )
        try:
            yield from self._sock.send(req, req.wire_size)
            message = yield from self._sock.recv()
        except _RETRIABLE as exc:
            if self.net.breaker is not None:
                self.net.breaker.record_failure(self.gateway)
            raise GatewayError(
                f"session channel to {self.gateway} broke: {exc}"
            ) from exc
        resp = message.payload
        if not isinstance(resp, HttpResponse):
            raise GatewayError(
                f"session channel: unexpected payload {resp!r}"
            )
        if self.net.breaker is not None:
            self.net.breaker.record_success(self.gateway)
        self.exchanges += 1
        return resp

    def close(self) -> None:
        """Tear down the connection and close the burst span."""
        self._sock.close()
        if self._span.open:
            self._span.end(exchanges=self.exchanges)


def _int_header(resp: HttpResponse, name: str) -> Optional[int]:
    """Parse an optional integer response header; None when absent/garbled."""
    raw = resp.headers.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return None
