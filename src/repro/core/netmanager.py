"""The Network Manager: all wireless traffic of the platform (§3.2, §3.6).

"Network management is responsible [for] managing all the activities that
require wireless network connections from wireless devices to gateways, such
as downloading mobile agent code and upload[ing] packed information."

Every method is a process performing exactly one HTTP exchange — the
device is online only for the duration of that exchange, which is what the
connection-time ledger measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..simnet.http import HttpError, HttpResponse, request
from ..simnet.transport import TransportError
from ..xmlcodec import Element, parse_bytes, write_bytes
from .errors import GatewayError, ResultNotReadyError
from .gateway import GATEWAY_PORT

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device

__all__ = ["NetworkManager"]


class NetworkManager:
    """Device-side HTTP client for gateway interactions."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.network = device.network
        self.uploads = 0
        self.downloads = 0

    # ------------------------------------------------------------ subscription
    def download_code(self, gateway: str, service: str) -> Generator:
        """Process: §3.1 code download; returns the protected code frame."""
        doc = Element("subscribe", {"service": service, "device": self.device.device_id})
        body = write_bytes(doc)
        resp = yield from self._post(gateway, "/subscribe", body, "subscribe")
        self.downloads += 1
        return resp.body

    # ------------------------------------------------------------ deployment
    def upload_pi(self, gateway: str, frame: bytes) -> Generator:
        """Process: §3.2 PI upload; returns ``(ticket_id, agent_id)``."""
        resp = yield from self._post(gateway, "/pi", frame, "upload-pi")
        self.uploads += 1
        doc = parse_bytes(resp.body)
        return doc.require_child("ticket").text, doc.require_child("agent").text

    # ------------------------------------------------------------ results
    def download_result(
        self, gateway: str, ticket_id: str, origin: Optional[str] = None
    ) -> Generator:
        """Process: §3.3 result download; returns the protected result frame.

        When ``origin`` names a different gateway than ``gateway``, the
        request uses the relay path: the contacted gateway fetches the
        document from the dispatching gateway over the wired network
        (mobility extension — the user collects wherever they now are).

        Raises :class:`ResultNotReadyError` on a 204 (the agent is still
        travelling) so callers can implement their own polling policy.
        """
        if origin and origin != gateway:
            path = f"/relay/{origin}/{ticket_id}"
        else:
            path = f"/result/{ticket_id}"
        try:
            resp = yield from request(
                self.network,
                self.device.address,
                gateway,
                "GET",
                path,
                port=GATEWAY_PORT,
                purpose="download-result",
                raise_for_status=False,
            )
        except TransportError as exc:
            raise GatewayError(f"download-result failed: {exc}") from exc
        if resp.status == 204:
            raise ResultNotReadyError(ticket_id)
        if not resp.ok:
            raise GatewayError(f"result download failed: {resp.status} {resp.reason}")
        self.downloads += 1
        return resp.body

    # ------------------------------------------------------------ agent ops
    def agent_op(self, gateway: str, ticket_id: str, op: str) -> Generator:
        """Process: §3.6 remote agent management; returns the reply element."""
        doc = Element("agentop", {"op": op, "ticket": ticket_id})
        body = write_bytes(doc)
        resp = yield from self._post(gateway, "/agent", body, f"agent-{op}")
        return parse_bytes(resp.body)

    # ------------------------------------------------------------ internals
    def _post(
        self, gateway: str, path: str, body: bytes, purpose: str
    ) -> Generator:
        try:
            resp: HttpResponse = yield from request(
                self.network,
                self.device.address,
                gateway,
                "POST",
                path,
                body=body,
                body_size=len(body),
                port=GATEWAY_PORT,
                purpose=purpose,
            )
        except (HttpError, TransportError) as exc:
            # Both application-level rejections and transport failures
            # (refused/unreachable gateway) surface uniformly, so callers —
            # notably the deploy failover — can treat the gateway as bad.
            raise GatewayError(f"{purpose} failed: {exc}") from exc
        return resp
