"""Deployment builder: wires a complete PDAgent environment together.

A *deployment* (the paper's Fig. 3 operating environment) consists of:

* one central server (gateway address list + trust anchor),
* one or more gateways, each with a co-located mobile agent server,
* network sites, each with a mobile agent server hosting service agents,
* wireless devices running :class:`~repro.core.platform.PDAgentPlatform`.

:class:`DeploymentBuilder` offers a declarative fluent API over the raw
constructors; examples and experiments use it so topology wiring lives in
one audited place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto import KeyVault
from ..device import Device, link_profile
from ..mas import (
    AgentClassRegistry,
    LocalServerAdapter,
    MobileAgentServer,
    ServiceAgent,
    wire_format_by_name,
)
from ..simnet import LinkSpec, Network, ShardedSimulator
from .config import PDAgentConfig
from .fleet import Fleet
from .gateway import Gateway
from .platform import PDAgentPlatform
from .registry import CentralServer
from .subscription import ServiceCatalog, ServiceCode, SubscriptionDirectory

__all__ = ["Deployment", "DeploymentBuilder"]


@dataclass
class Deployment:
    """A fully wired PDAgent environment."""

    network: Network
    registry: AgentClassRegistry
    catalog: ServiceCatalog
    directory: SubscriptionDirectory
    vault: KeyVault
    central: CentralServer
    gateways: dict[str, Gateway] = field(default_factory=dict)
    mas_servers: dict[str, MobileAgentServer] = field(default_factory=dict)
    devices: dict[str, Device] = field(default_factory=dict)
    platforms: dict[str, PDAgentPlatform] = field(default_factory=dict)
    #: Fleet-tier membership/ownership map; None unless config.fleet_enabled.
    fleet: Optional[Fleet] = None

    @property
    def sim(self):
        return self.network.sim

    def gateway(self, address: str) -> Gateway:
        return self.gateways[address]

    def platform(self, address: str) -> PDAgentPlatform:
        return self.platforms[address]

    def mas(self, address: str) -> MobileAgentServer:
        return self.mas_servers[address]


class DeploymentBuilder:
    """Fluent construction of a :class:`Deployment`.

    >>> builder = DeploymentBuilder(master_seed=42)
    >>> builder.add_central("central")                    # doctest: +SKIP
    >>> builder.add_gateway("gw-0", uplink="WAN")         # doctest: +SKIP
    >>> builder.add_site("bank-a", uplink="WAN")          # doctest: +SKIP
    >>> builder.add_device("pda", gateway_link="GPRS")    # doctest: +SKIP
    >>> deployment = builder.build()                      # doctest: +SKIP
    """

    def __init__(
        self,
        master_seed: int = 0,
        config: Optional[PDAgentConfig] = None,
        mas_flavour: str = "aglets",
        shards: Optional[int] = None,
    ) -> None:
        self.config = config or PDAgentConfig()
        # shards=None (or <=1 with no explicit request) keeps the classic
        # single-heap kernel; shards=K runs the same deployment on a
        # ShardedSimulator with K per-region calendars.  The sharded merge
        # is exact, so both kernels produce byte-identical runs.
        self.shards = int(shards) if shards else 0
        if self.shards:
            self.network = Network(
                sim=ShardedSimulator(n_shards=self.shards),
                master_seed=master_seed,
            )
        else:
            self.network = Network(master_seed=master_seed)
        self.registry = AgentClassRegistry()
        self.catalog = ServiceCatalog()
        self.directory = SubscriptionDirectory()
        self.vault = KeyVault(bits=self.config.rsa_bits, seed=master_seed)
        self.mas_flavour = mas_flavour
        self._central_address: Optional[str] = None
        self._central: Optional[CentralServer] = None
        self._gateways: dict[str, Gateway] = {}
        self._mas_servers: dict[str, MobileAgentServer] = {}
        self._devices: dict[str, Device] = {}
        self._platforms: dict[str, PDAgentPlatform] = {}
        self._backbone = "backbone"
        # All wired infrastructure hangs off a backbone router node, so any
        # gateway/site pair is mutually reachable.
        self.network.add_node(self._backbone, kind="router")

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _resolve_link(link: LinkSpec | str) -> LinkSpec:
        return link_profile(link) if isinstance(link, str) else link

    # ------------------------------------------------------------ infrastructure
    def add_central(self, address: str, uplink: LinkSpec | str = "LAN") -> "DeploymentBuilder":
        """Create the central server on a node wired to the backbone."""
        if self._central is not None:
            raise ValueError("deployment already has a central server")
        self.network.add_node(address, kind="server")
        self.network.add_duplex_link(address, self._backbone, self._resolve_link(uplink))
        self._central = CentralServer(self.network, address, self.vault)
        self._central_address = address
        return self

    def add_gateway(
        self,
        address: str,
        uplink: LinkSpec | str = "LAN",
        register: bool = True,
    ) -> "DeploymentBuilder":
        """Create a gateway + co-located MAS server, and enrol it centrally."""
        if self._central is None:
            raise ValueError("add_central() must come before add_gateway()")
        self.network.add_node(address, kind="gateway")
        self.network.add_duplex_link(address, self._backbone, self._resolve_link(uplink))
        mas = MobileAgentServer(
            self.network,
            address,
            self.registry,
            wire_format=wire_format_by_name(self.mas_flavour),
        )
        mas.hop_reports_enabled = self.config.session_enabled
        self._mas_servers[address] = mas
        gateway = Gateway(
            self.network,
            address,
            adapter=LocalServerAdapter(mas),
            catalog=self.catalog,
            directory=self.directory,
            vault=self.vault,
            config=self.config,
        )
        self._gateways[address] = gateway
        if self.shards:
            # Gateway g homes region g % K; its region subgraph carries all
            # routing for the devices assigned to the same shard.
            self.network.assign_shard(
                address, (len(self._gateways) - 1) % self.shards
            )
        if register:
            self._central.register_gateway(address)
        return self

    def add_site(
        self,
        address: str,
        uplink: LinkSpec | str = "WAN",
        services: Optional[list[ServiceAgent]] = None,
    ) -> "DeploymentBuilder":
        """Create a network site with a MAS server and its service agents."""
        self.network.add_node(address, kind="site")
        self.network.add_duplex_link(address, self._backbone, self._resolve_link(uplink))
        mas = MobileAgentServer(
            self.network,
            address,
            self.registry,
            wire_format=wire_format_by_name(self.mas_flavour),
        )
        mas.hop_reports_enabled = self.config.session_enabled
        self._mas_servers[address] = mas
        for service in services or []:
            mas.register_service(service)
        return self

    def add_device(
        self,
        address: str,
        profile: str = "PDA",
        wireless: LinkSpec | str = "GPRS",
        attach_to: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> "DeploymentBuilder":
        """Create a device + platform; its wireless link lands on
        ``attach_to`` (default: the backbone, i.e. an access point that can
        reach every gateway).  On a sharded deployment the device is homed
        by ``shard`` (its home cell), defaulting to round-robin over the
        shard count — assignment is a locality hint only."""
        if self._central_address is None:
            raise ValueError("add_central() must come before add_device()")
        device = Device(self.network, address, profile=profile)
        device.attach_wireless(
            attach_to or self._backbone, self._resolve_link(wireless)
        )
        if self.shards:
            home = (
                len(self._devices) % self.shards if shard is None else shard
            )
            self.network.assign_shard(address, home % self.shards)
        self._devices[address] = device
        self._platforms[address] = PDAgentPlatform(
            device, self._central_address, config=self.config
        )
        return self

    def publish(self, code: ServiceCode) -> "DeploymentBuilder":
        """Publish an MA application in the deployment catalogue."""
        self.catalog.publish(code)
        return self

    def register_agent_class(self, cls) -> "DeploymentBuilder":
        """Register an agent class with every MAS server of the deployment."""
        self.registry.register(cls)
        return self

    # ------------------------------------------------------------ build
    def build(self) -> Deployment:
        if self._central is None:
            raise ValueError("deployment needs a central server")
        if not self._gateways:
            raise ValueError("deployment needs at least one gateway")
        if self.shards:
            # Conservative lookahead = min base link latency: windows the
            # cross-shard exchange (pure batching knob; exactness is the
            # merge's job, so jitter undercutting the bound is harmless).
            self.network.sim.lookahead = self.network.conservative_lookahead()
        fleet = None
        if self.config.fleet_enabled:
            fleet = Fleet(
                sorted(self._gateways), replicas=self.config.fleet_replicas
            )
            for gateway in self._gateways.values():
                gateway.enable_fleet(fleet)
            for platform in self._platforms.values():
                # Health-aware selection: devices skip draining/down
                # members and follow drain successor hints on collect.
                platform.selector.membership = fleet.view
        return Deployment(
            fleet=fleet,
            network=self.network,
            registry=self.registry,
            catalog=self.catalog,
            directory=self.directory,
            vault=self.vault,
            central=self._central,
            gateways=dict(self._gateways),
            mas_servers=dict(self._mas_servers),
            devices=dict(self._devices),
            platforms=dict(self._platforms),
        )
