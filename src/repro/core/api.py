"""PDAgent public API primitives (§3.6).

"PDAgent provides a set of APIs that help application developers to build
their own mobile applications.  The API contains primitives for dispatching
mobile agents, monitoring mobile agent activities, retracting mobile agents
from the Internet, and disposing mobile agents.  In addition … functions for
internal system management and network management."

This module is the stable, documented surface a PDAgent application is
written against.  Each primitive is a thin, named wrapper over the platform
facade so application code reads like the paper's API list:

================================  ========================================
paper primitive                    function here
================================  ========================================
download mobile agent code         :func:`download_code`
dispatch mobile agent              :func:`dispatch_agent`
monitor mobile agent activities    :func:`monitor_agent`
retract agent from the Internet    :func:`retract_agent`
clone an agent                     :func:`clone_agent`
dispose a mobile agent             :func:`dispose_agent`
collect execution result           :func:`collect_result`
generate unique keys               :func:`generate_unique_key`
read/write XML documents           :func:`read_xml` / :func:`write_xml`
network management                 :func:`find_nearest_gateway`
================================  ========================================

All network-touching primitives are *processes* — run them with
``yield from`` inside a simulation process, or drive them with
:func:`run_api_call` from plain code.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..crypto import derive_dispatch_key
from ..mas.itinerary import Stop
from ..xmlcodec import Element, parse, write
from .platform import CollectedResult, DispatchHandle, PDAgentPlatform

__all__ = [
    "download_code",
    "dispatch_agent",
    "monitor_agent",
    "retract_agent",
    "clone_agent",
    "dispose_agent",
    "collect_result",
    "generate_unique_key",
    "read_xml",
    "write_xml",
    "find_nearest_gateway",
    "run_api_call",
]


def download_code(
    platform: PDAgentPlatform, service: str, gateway: Optional[str] = None
) -> Generator:
    """Process: subscribe to ``service`` (§3.1) and store its MA code."""
    stored = yield from platform.subscribe(service, gateway=gateway)
    return stored


def dispatch_agent(
    platform: PDAgentPlatform,
    service: str,
    params: dict[str, Any],
    stops: Optional[list[Stop]] = None,
) -> Generator:
    """Process: deploy a subscribed application (§3.2).

    Returns a :class:`~repro.core.platform.DispatchHandle`; the device may
    disconnect as soon as this returns.
    """
    handle = yield from platform.deploy(service, params, stops=stops)
    return handle


def monitor_agent(platform: PDAgentPlatform, handle: DispatchHandle) -> Generator:
    """Process: the agent's current lifecycle state ("view agent status")."""
    state = yield from platform.agent_status(handle)
    return state


def retract_agent(platform: PDAgentPlatform, handle: DispatchHandle) -> Generator:
    """Process: pull the agent back from the network (§3.6)."""
    state = yield from platform.retract_agent(handle)
    return state


def clone_agent(platform: PDAgentPlatform, handle: DispatchHandle) -> Generator:
    """Process: clone the agent at its current site; returns the clone's handle."""
    clone = yield from platform.clone_agent(handle)
    return clone


def dispose_agent(platform: PDAgentPlatform, handle: DispatchHandle) -> Generator:
    """Process: dispose the agent and release gateway workspace."""
    state = yield from platform.dispose_agent(handle)
    return state


def collect_result(
    platform: PDAgentPlatform, handle: DispatchHandle, poll: bool = False
) -> Generator:
    """Process: download the result XML document (§3.3).

    ``poll=True`` keeps retrying at the configured interval instead of
    raising :class:`~repro.core.errors.ResultNotReadyError`.
    """
    if poll:
        result: CollectedResult = yield from platform.collect_poll(handle)
    else:
        result = yield from platform.collect(handle)
    return result


def generate_unique_key(code_id: str, device_id: str, nonce: str) -> str:
    """System management: the dispatch key for an assigned code id (§3.2)."""
    return derive_dispatch_key(code_id, device_id, nonce)


def read_xml(text: str) -> Element:
    """System management: parse an XML document (kXML-equivalent)."""
    return parse(text)


def write_xml(root: Element, indent: str = "") -> str:
    """System management: serialise an XML document."""
    return write(root, indent=indent)


def find_nearest_gateway(platform: PDAgentPlatform) -> Generator:
    """Process: network management — probe and pick the shortest-RTT gateway."""
    address = yield from platform.selector.select()
    return address


def run_api_call(platform: PDAgentPlatform, call: Generator) -> Any:
    """Drive one API process to completion on the platform's simulator.

    Convenience for scripts and tests::

        handle = run_api_call(platform, dispatch_agent(platform, "ebanking", params))
    """
    sim = platform.device.sim
    proc = sim.process(call)
    return sim.run(until=proc)
