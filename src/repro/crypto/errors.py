"""Crypto exceptions."""

from __future__ import annotations

__all__ = ["CryptoError", "IntegrityError"]


class CryptoError(Exception):
    """Base class for cryptographic failures."""


class IntegrityError(CryptoError):
    """MD5 verification of a received package failed (§3.4)."""
