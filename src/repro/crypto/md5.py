"""MD5 message digest, implemented from RFC 1321.

The paper's gateway uses MD5 (their ref. [14] is RFC 1321) to verify that a
received Packed Information is intact before decrypting it.  This is a
from-scratch implementation — tested against :mod:`hashlib` — so the
reproduction carries its own substrate rather than assuming one.
"""

from __future__ import annotations

import math
import struct

__all__ = ["md5", "md5_hex", "MD5"]

# Per-round left-rotate amounts (RFC 1321 §3.4).
_SHIFTS = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)
# Sine-derived constants: K[i] = floor(2^32 * |sin(i + 1)|).
_K = [int((1 << 32) * abs(math.sin(i + 1))) & 0xFFFFFFFF for i in range(64)]
_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
_MASK = 0xFFFFFFFF


def _rotl(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK


class MD5:
    """Incremental MD5 (``update``/``digest``), mirroring hashlib's API."""

    digest_size = 16
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(_INIT)
        self._buffer = bytearray()
        self._length = 0  # total message bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"update() wants bytes, got {type(data).__name__}")
        self._length += len(data)
        self._buffer.extend(data)
        while len(self._buffer) >= 64:
            self._compress(bytes(self._buffer[:64]))
            del self._buffer[:64]

    def copy(self) -> "MD5":
        clone = MD5()
        clone._state = list(self._state)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        # Pad a copy so update() can continue afterwards.
        clone = self.copy()
        bit_length = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        clone.update(b"\x80")
        while len(clone._buffer) != 56:
            clone.update(b"\x00")
        clone.update(struct.pack("<Q", bit_length))
        assert not clone._buffer
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._state
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & _MASK
            a, d, c = d, c, b
            b = (b + _rotl(f, _SHIFTS[i])) & _MASK
        self._state = [
            (self._state[0] + a) & _MASK,
            (self._state[1] + b) & _MASK,
            (self._state[2] + c) & _MASK,
            (self._state[3] + d) & _MASK,
        ]


# The from-scratch MD5 above is the reference implementation (and stays
# under test against hashlib); the module-level helpers sit on the
# per-message hot path — keystream blocks and integrity tags — so they
# delegate to the C implementation, which is bit-identical by definition.
try:  # pragma: no cover - hashlib always has md5 on CPython
    from hashlib import md5 as _hashlib_md5
except ImportError:  # pragma: no cover
    _hashlib_md5 = None


def md5(data: bytes) -> bytes:
    """16-byte MD5 digest of ``data``."""
    if _hashlib_md5 is not None:
        return _hashlib_md5(data).digest()
    return MD5(data).digest()


def md5_hex(data: bytes) -> str:
    """Hex MD5 digest of ``data``."""
    if _hashlib_md5 is not None:
        return _hashlib_md5(data).hexdigest()
    return MD5(data).hexdigest()
