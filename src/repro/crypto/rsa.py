"""Textbook RSA with Miller–Rabin key generation.

PDAgent's §3.4 security model: the device encrypts the Packed Information
with the gateway's *public* key; the gateway decrypts with its private key.
This module provides the asymmetric primitive; :mod:`repro.crypto.envelope`
builds the hybrid scheme actually used on PI payloads.

This is a **protocol model**, not production cryptography: default keys are
512 bits, padding is a simple random prefix (not OAEP), and no blinding is
performed.  That is faithful to the paper's scope ("implementing a
comprehensive security service is beyond the scope of this paper") while
letting the benchmarks measure the real byte and CPU overheads the design
pays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from .errors import CryptoError

__all__ = [
    "PublicKey",
    "PrivateKey",
    "generate_keypair",
    "is_probable_prime",
    "encrypt_int",
    "decrypt_int",
]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]
_DEFAULT_E = 65537


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Deterministic default witness stream: seeding from ``n`` keeps the
    # test a pure function of its input (an unseeded Random() would make
    # repeat calls draw different witnesses, breaking run replayability).
    rng = rng or random.Random(n)
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """Random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be >= 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_size(self) -> int:
        """Bytes needed to hold one ciphertext block."""
        return (self.bits + 7) // 8

    def fingerprint(self) -> str:
        """Short stable identifier used in traces and key registries."""
        from .md5 import md5_hex

        return md5_hex(f"{self.n}:{self.e}".encode())[:16]


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key; carries the public part for convenience."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> PublicKey:
        return PublicKey(self.n, self.e)


def generate_keypair(bits: int = 512, seed: int | None = None) -> PrivateKey:
    """Generate an RSA keypair with an ``bits``-bit modulus.

    ``seed`` makes generation deterministic (used by tests and by the
    simulator so every run uses identical keys).  Seeded generation is a
    pure function of ``(bits, seed)``, so repeat requests — every scenario
    build re-derives the same per-gateway keys — come from a memo instead
    of re-running Miller–Rabin; the keys are frozen dataclasses, safe to
    share.
    """
    if seed is not None:
        return _generate_keypair_seeded(bits, seed)
    return _generate_keypair(bits, None)


@lru_cache(maxsize=None)
def _generate_keypair_seeded(bits: int, seed: int) -> PrivateKey:
    return _generate_keypair(bits, seed)


def _generate_keypair(bits: int, seed: int | None) -> PrivateKey:
    if bits < 64:
        raise ValueError("modulus must be >= 64 bits")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        e = _DEFAULT_E
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return PrivateKey(n=n, e=e, d=d, p=p, q=q)


def encrypt_int(m: int, key: PublicKey) -> int:
    """Raw RSA: ``m^e mod n``.  ``m`` must be < n."""
    if not 0 <= m < key.n:
        raise CryptoError("plaintext integer out of range for this key")
    return pow(m, key.e, key.n)


@lru_cache(maxsize=None)
def _crt_params(key: PrivateKey) -> tuple[int, int, int]:
    """Per-key CRT exponents/inverse (pure function of the frozen key)."""
    return key.d % (key.p - 1), key.d % (key.q - 1), pow(key.q, -1, key.p)


def decrypt_int(c: int, key: PrivateKey) -> int:
    """Raw RSA decryption using the CRT for speed."""
    if not 0 <= c < key.n:
        raise CryptoError("ciphertext integer out of range for this key")
    # CRT: m_p = c^(d mod p-1) mod p, m_q likewise, recombine.
    dp, dq, q_inv = _crt_params(key)
    m_p = pow(c % key.p, dp, key.p)
    m_q = pow(c % key.q, dq, key.q)
    h = (q_inv * (m_p - m_q)) % key.p
    return m_q + h * key.q
