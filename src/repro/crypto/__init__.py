"""Security substrate for PDAgent's §3.4 information security model.

From-scratch implementations (no external crypto dependency):

* :mod:`~repro.crypto.md5` — RFC 1321 MD5 (the paper's integrity check);
* :mod:`~repro.crypto.rsa` — textbook RSA with Miller–Rabin keygen (the
  paper's "Asymmetric Key Encryption");
* :mod:`~repro.crypto.envelope` — the hybrid seal/open protocol applied to
  Packed Information;
* :mod:`~repro.crypto.keys` — key registries and the unique dispatch-key
  scheme for authorising MA code execution.

**Not production crypto** — a faithful protocol model sized to measure the
overheads the paper's design pays.
"""

from .envelope import (
    SESSION_KEY_BYTES,
    EnvelopeSession,
    keystream,
    new_session,
    open_envelope,
    seal,
    seal_with_session,
)
from .errors import CryptoError, IntegrityError
from .keys import (
    KeyRing,
    KeyVault,
    derive_dispatch_key,
    validate_dispatch_key,
)
from .md5 import MD5, md5, md5_hex
from .rsa import (
    PrivateKey,
    PublicKey,
    decrypt_int,
    encrypt_int,
    generate_keypair,
    is_probable_prime,
)

__all__ = [
    "md5",
    "md5_hex",
    "MD5",
    "PublicKey",
    "PrivateKey",
    "generate_keypair",
    "is_probable_prime",
    "encrypt_int",
    "decrypt_int",
    "seal",
    "seal_with_session",
    "new_session",
    "EnvelopeSession",
    "open_envelope",
    "keystream",
    "SESSION_KEY_BYTES",
    "KeyRing",
    "KeyVault",
    "derive_dispatch_key",
    "validate_dispatch_key",
    "CryptoError",
    "IntegrityError",
]
