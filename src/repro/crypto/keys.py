"""Key management: registries and the PDAgent unique-id/key scheme.

Two concerns from the paper:

* §3.4 — each gateway owns an RSA keypair; devices know gateway public keys
  (distributed with the gateway address list).  :class:`KeyRing` models the
  device-side public-key store; :class:`KeyVault` the gateway-side private
  keys.
* §3.1/§3.2 — each downloaded MA code gets a **unique id**, and at dispatch
  time the platform derives a **unique key** from that id which the gateway
  validates before creating agent classes.  :func:`derive_dispatch_key` and
  :func:`validate_dispatch_key` implement that scheme as a keyed MD5 over
  ``(code_id, device_id, nonce)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .errors import CryptoError
from .md5 import md5_hex
from .rsa import PrivateKey, PublicKey, generate_keypair

__all__ = [
    "KeyRing",
    "KeyVault",
    "derive_dispatch_key",
    "validate_dispatch_key",
]


@dataclass
class KeyRing:
    """Device-side store of gateway public keys, indexed by address."""

    _keys: dict[str, PublicKey] = field(default_factory=dict)

    def add(self, address: str, key: PublicKey) -> None:
        existing = self._keys.get(address)
        if existing is not None and existing != key:
            raise CryptoError(f"conflicting public key for {address!r}")
        self._keys[address] = key

    def get(self, address: str) -> PublicKey:
        try:
            return self._keys[address]
        except KeyError:
            raise CryptoError(f"no public key for gateway {address!r}") from None

    def knows(self, address: str) -> bool:
        return address in self._keys

    def __len__(self) -> int:
        return len(self._keys)


class KeyVault:
    """Gateway-side private key holder.

    Generates a deterministic keypair per gateway address so simulator runs
    are reproducible; a shared vault hands each gateway its own keys.
    """

    def __init__(self, bits: int = 512, seed: int = 0) -> None:
        self._bits = bits
        self._seed = seed
        self._keys: dict[str, PrivateKey] = {}

    def keypair(self, address: str) -> PrivateKey:
        """The (lazily generated) keypair for ``address``."""
        key = self._keys.get(address)
        if key is None:
            # Stable per-address derivation from the vault seed.
            sub_seed = int(md5_hex(f"{self._seed}:{address}".encode())[:12], 16)
            key = generate_keypair(self._bits, seed=sub_seed)
            self._keys[address] = key
        return key

    def public_key(self, address: str) -> PublicKey:
        return self.keypair(address).public


def derive_dispatch_key(code_id: str, device_id: str, nonce: str) -> str:
    """Unique key sent with a PI, derived from the subscription's code id.

    The gateway can recompute and compare it (it learns ``code_id`` at
    subscription time), so a PI citing a code id the device never subscribed
    to — or replaying another device's key — is rejected.
    """
    if not code_id or not device_id:
        raise ValueError("code_id and device_id must be non-empty")
    return md5_hex(f"{code_id}|{device_id}|{nonce}".encode())


def validate_dispatch_key(
    key: str, code_id: str, device_id: str, nonce: str
) -> bool:
    """Gateway-side check of a PI's dispatch key."""
    try:
        expected = derive_dispatch_key(code_id, device_id, nonce)
    except ValueError:
        return False
    return _constant_time_eq(key, expected)


def _constant_time_eq(a: str, b: str) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a.encode(), b.encode()):
        diff |= x ^ y
    return diff == 0
