"""Hybrid encryption envelope for Packed Information (§3.4, Fig. 7).

The protocol the paper describes:

1. the device encrypts the user's information with the gateway's **public
   key** and wraps it in XML (the "Packed Information");
2. the gateway **MD5-verifies** the received package;
3. if valid, the gateway decrypts with its **private key**.

Raw RSA cannot encrypt multi-KB payloads, so (as any real implementation
would) we use a hybrid envelope: a fresh random session key is RSA-encrypted,
and the payload is XORed with an MD5-based keystream (an MGF1-style
construction: ``MD5(session_key || counter)`` blocks).  The envelope carries
an MD5 integrity tag computed over header + ciphertext — this is the tag the
gateway checks in step 2.

Frame layout (all integers little-endian)::

    magic      4  b"PDE1"
    key_len    2  RSA ciphertext length in bytes
    rsa_block  key_len
    tag        16 MD5(magic || key_len || rsa_block || ciphertext)
    ciphertext rest
"""

from __future__ import annotations

import struct

from .errors import CryptoError, IntegrityError
from .md5 import md5
from .rsa import PrivateKey, PublicKey, decrypt_int, encrypt_int

__all__ = [
    "seal",
    "seal_with_session",
    "new_session",
    "open_envelope",
    "keystream",
    "EnvelopeSession",
    "SESSION_KEY_BYTES",
]

_MAGIC = b"PDE1"
SESSION_KEY_BYTES = 16
_PAD_BYTES = 11  # random non-zero prefix distinguishing session keys


def keystream(session_key: bytes, length: int) -> bytes:
    """MD5-counter keystream of ``length`` bytes."""
    blocks = (length + 15) >> 4
    out = b"".join(
        md5(session_key + struct.pack("<I", counter)) for counter in range(blocks)
    )
    return out[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    # Whole-buffer XOR via bigints: one C-level op instead of a Python loop.
    n = len(data)
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(stream[:n], "little")
    ).to_bytes(n, "little")


class EnvelopeSession:
    """A reusable ``(session_key, rsa_block)`` pair for one recipient key.

    The expensive asymmetric work — the device's modexp and, above all, the
    gateway's CRT decryption — depends only on the session key, so a device
    that uploads repeatedly to the same gateway can amortize it TLS-session
    style: the gateway recognises a previously decrypted ``rsa_block`` and
    skips straight to the symmetric layer.  This is a protocol *model* (see
    the module docstring): a production scheme would re-key the symmetric
    stream per message rather than reuse the MD5-counter keystream.
    """

    __slots__ = ("session_key", "rsa_block")

    def __init__(self, session_key: bytes, rsa_block: bytes) -> None:
        self.session_key = session_key
        self.rsa_block = rsa_block


def new_session(public_key: PublicKey, rng_bytes) -> EnvelopeSession:
    """Draw a fresh session key and RSA-encrypt it for ``public_key``.

    ``rng_bytes`` is a callable ``n -> bytes`` supplying randomness (the
    simulator passes a seeded stream so runs are reproducible).
    """
    if public_key.byte_size < SESSION_KEY_BYTES + _PAD_BYTES + 1:
        raise CryptoError("key modulus too small for the session-key block")
    session_key = rng_bytes(SESSION_KEY_BYTES)
    # Pad: 0x01 || random-nonzero || 0x00 || session_key, interpreted as int.
    pad = bytearray()
    while len(pad) < _PAD_BYTES:
        for b in rng_bytes(_PAD_BYTES):
            if b != 0 and len(pad) < _PAD_BYTES:
                pad.append(b)
    block = bytes([0x01]) + bytes(pad) + b"\x00" + session_key
    m = int.from_bytes(block, "big")
    c = encrypt_int(m, public_key)
    rsa_block = c.to_bytes(public_key.byte_size, "big")
    return EnvelopeSession(session_key, rsa_block)


def seal_with_session(plaintext: bytes, session: EnvelopeSession) -> bytes:
    """Build an envelope frame using an existing :class:`EnvelopeSession`."""
    session_key = session.session_key
    rsa_block = session.rsa_block
    ciphertext = _xor(plaintext, keystream(session_key, len(plaintext)))
    header = _MAGIC + struct.pack("<H", len(rsa_block)) + rsa_block
    tag = md5(header + ciphertext)
    return header + tag + ciphertext


def seal(plaintext: bytes, public_key: PublicKey, rng_bytes) -> bytes:
    """Encrypt ``plaintext`` for the holder of ``public_key``.

    Draws a fresh session key per call; callers that upload repeatedly
    should hold an :class:`EnvelopeSession` and use
    :func:`seal_with_session` instead.
    """
    return seal_with_session(plaintext, new_session(public_key, rng_bytes))


def open_envelope(
    frame: bytes,
    private_key: PrivateKey,
    session_cache: dict | None = None,
) -> bytes:
    """Verify and decrypt an envelope produced by :func:`seal`.

    Raises :class:`IntegrityError` if the MD5 tag does not match (the
    gateway's step-2 check) and :class:`CryptoError` for structural damage.

    ``session_cache`` maps ``rsa_block`` bytes to already-recovered session
    keys: the CRT decryption is by far the costliest step, and a device
    reusing its session uploads the same ``rsa_block`` every time.  Only
    *verified* recoveries enter the cache, and a hit still re-checks the
    frame's MD5 tag, so a forged frame can neither poison nor exploit it.
    """
    if len(frame) < 6:
        raise CryptoError("envelope shorter than header")
    if frame[:4] != _MAGIC:
        raise CryptoError(f"bad envelope magic {frame[:4]!r}")
    (key_len,) = struct.unpack_from("<H", frame, 4)
    header_len = 6 + key_len
    if len(frame) < header_len + 16:
        raise CryptoError("truncated envelope")
    header = frame[:header_len]
    tag = frame[header_len : header_len + 16]
    ciphertext = frame[header_len + 16 :]
    if md5(header + ciphertext) != tag:
        raise IntegrityError("MD5 verification failed")
    rsa_block = frame[6:header_len]
    session_key = session_cache.get(rsa_block) if session_cache is not None else None
    if session_key is None:
        c = int.from_bytes(rsa_block, "big")
        m = decrypt_int(c, private_key)
        block = m.to_bytes(private_key.n.bit_length() // 8 + 1, "big").lstrip(b"\x00")
        # block = 0x01 || pad || 0x00 || session_key
        if not block or block[0] != 0x01:
            raise CryptoError("malformed session-key block")
        try:
            sep = block.index(0, 1)
        except ValueError:
            raise CryptoError("malformed session-key block") from None
        session_key = block[sep + 1 :]
        if len(session_key) != SESSION_KEY_BYTES:
            raise CryptoError("malformed session key")
        if session_cache is not None:
            session_cache[rsa_block] = session_key
    return _xor(ciphertext, keystream(session_key, len(ciphertext)))
