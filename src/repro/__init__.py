"""PDAgent reproduction.

A from-scratch Python implementation of *"PDAgent: A Platform for Developing
and Deploying Mobile Agent-enabled Applications for Wireless Devices"*
(Jiannong Cao, Daniel C.K. Tse, Alvin T.S. Chan — ICPP 2004), together with
every substrate the paper's system depends on:

=====================  ======================================================
:mod:`repro.simnet`     deterministic discrete-event network simulator
:mod:`repro.device`     wireless-handheld hardware model + era profiles
:mod:`repro.rms`        J2ME Record Management System substitute
:mod:`repro.xmlcodec`   kXML-substitute XML writer/parser/DOM
:mod:`repro.compressor` Huffman / LZSS / null codecs behind one frame format
:mod:`repro.crypto`     RFC-1321 MD5, RSA, hybrid envelope, key registries
:mod:`repro.mas`        complete mobile-agent system (Aglets substitute)
:mod:`repro.core`       **PDAgent itself**: device platform, gateway,
                        central server, packed information, §3.6 API
:mod:`repro.baselines`  client-server / web-based / client-agent-server
:mod:`repro.apps`       e-banking, food search, newswire applications
:mod:`repro.experiments` Figure 12/13 + claims + ablation harness
=====================  ======================================================

Quickstart::

    from repro.core import DeploymentBuilder
    from repro.core.api import dispatch_agent, collect_result, run_api_call
    # see examples/quickstart.py for a complete runnable scenario
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
