"""Streaming-session experiment: sessions vs store-and-forward under faults.

The streaming layer makes two quantitative promises over the classic
§3.2/§3.3 verbs, both under the *same* reference fault schedule the
fault-tolerance experiment uses:

* **Resumable uploads retransmit less.**  A store-and-forward upload
  that dies mid-exchange (or fails over to another gateway) re-sends the
  whole frame; a chunked session resumes from the gateway's last
  acknowledged offset and re-sends at most the chunk in flight.  Both
  approaches share one device-side ledger
  (``NetworkManager.retransmitted_bytes`` — exchange retries, failover
  restarts, and session resume gaps all count), so the numbers compare
  like for like; the upload bytes actually put on the wire are reported
  alongside as a cross-check.
* **Results stream in early.**  Each itinerary hop reports its site
  result home; the device's first poll after the first hop lands the
  first answer, instead of waiting for the whole tour.  Time-to-first-
  result is ``session.first_partial_at - task start`` for streaming and
  the final collect time for store-and-forward (the earliest moment the
  classic flow shows the user *anything*).

The final document download is the unchanged :meth:`collect` path; a
post-run verification pass re-downloads every collected result over the
plain store-and-forward verb and checks byte identity (outside the
connection-time accounting, so the comparison stays fair).

Reported per approach: completion rate, connection seconds (total and per
completed task), mean/min time-to-first-result, retransmitted bytes, and
the streaming run's session ledgers (chunks, re-opens, partials).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..compressor import decompress
from ..core import PDAgentConfig
from ..core.errors import PDAgentError
from ..simnet.faults import FaultSchedule
from ..telemetry.exporters import TraceCollector
from .faults import reference_schedule
from .report import format_table
from .scenario import EvaluationScenario, build_scenario

__all__ = [
    "StreamingRunResult",
    "StreamingComparison",
    "run_streaming_under_faults",
    "run_store_forward_under_faults",
    "run_streaming_comparison",
    "main",
]

#: One task is launched every PERIOD seconds, matching the fault schedule's
#: coordinate system (odd-period LinkDowns land at +12 s in the period).
TASK_PERIOD_S = 60.0
DEFAULT_N_TASKS = 4
#: Fat batches over a four-bank tour: enough PI bytes for several chunk
#: boundaries, and a tour long enough that partial results arrive while
#: the agent is still travelling.
DEFAULT_N_TXNS = 24
BANKS = ("bank-a", "bank-b", "bank-c", "bank-d")
#: Small chunks: several chunk boundaries per outage window.
CHUNK_BYTES = 512
#: Tasks launch this far into their period, which puts the chunk burst of
#: the streaming upload squarely under the odd-period LinkDown (at +12 s):
#: the first chunk acks just before the cut, so the session resumes from
#: a real high-water mark — the resume-vs-restart comparison is exercised
#: on this very schedule, not just in unit tests.
UPLOAD_LEAD_S = 6.0

COLLECT_ATTEMPTS = 3
COLLECT_RETRY_WAIT_S = 10.0
#: Application-level deploy retry (same task id — the gateway dedups): the
#: "user taps retry" loop both approaches get, so a deployment that dies
#: against a crashed gateway plus an outage is re-attempted rather than
#: written off.
DEPLOY_ATTEMPTS = 3
DEPLOY_RETRY_WAIT_S = 20.0


@dataclass
class StreamingRunResult:
    """One approach's aggregate over the (possibly faulted) workload."""

    approach: str
    seed: int
    n_tasks: int
    n_transactions: int
    completed: int
    connection_time: float
    #: Device-side ledger: bytes re-sent by transport/shed retries (both
    #: approaches) plus duplicate session chunks (streaming only).
    retransmitted_bytes: int
    uploaded_bytes: int
    faults_injected: int
    #: Per completed task: seconds from task start to the first result
    #: information reaching the device.
    ttfr: list[float] = field(default_factory=list)
    #: Streaming only — session ledgers summed over all tasks.
    chunks_sent: int = 0
    reopens: int = 0
    partials: int = 0
    push_events: int = 0
    #: Every verified result matched its plain re-download byte for byte.
    byte_identical: bool = True
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n_tasks if self.n_tasks else 0.0

    @property
    def connection_time_per_completed(self) -> float:
        if not self.completed:
            return float("inf")
        return self.connection_time / self.completed

    @property
    def mean_ttfr(self) -> float:
        return sum(self.ttfr) / len(self.ttfr) if self.ttfr else float("inf")

    @property
    def min_ttfr(self) -> float:
        return min(self.ttfr) if self.ttfr else float("inf")


@dataclass
class StreamingComparison:
    """Streaming vs store-and-forward, same seed, same fault schedule."""

    streaming: StreamingRunResult
    store_forward: StreamingRunResult

    @property
    def retransmit_savings(self) -> int:
        return (
            self.store_forward.retransmitted_bytes
            - self.streaming.retransmitted_bytes
        )

    @property
    def ttfr_speedup(self) -> float:
        if self.streaming.mean_ttfr == 0:
            return float("inf")
        return self.store_forward.mean_ttfr / self.streaming.mean_ttfr

    def rows(self) -> list[list]:
        def row(name: str, run: StreamingRunResult) -> list:
            return [
                name,
                f"{run.completed}/{run.n_tasks}",
                round(run.connection_time, 2),
                round(run.connection_time_per_completed, 2),
                round(run.mean_ttfr, 2),
                round(run.min_ttfr, 2),
                run.retransmitted_bytes,
                run.uploaded_bytes,
            ]

        return [
            row("Streaming session", self.streaming),
            row("Store-and-forward", self.store_forward),
        ]

    def render(self) -> str:
        table = format_table(
            [
                "approach",
                "completed",
                "conn time (s)",
                "s/completed",
                "mean TTFR (s)",
                "min TTFR (s)",
                "retransmit (B)",
                "uploaded (B)",
            ],
            self.rows(),
            title=(
                "Streaming sessions vs store-and-forward under the reference "
                f"fault schedule ({self.streaming.faults_injected} fault "
                "transitions recorded)"
            ),
        )
        s = self.streaming
        extra = (
            f"streaming ledgers: {s.chunks_sent} chunk(s), {s.reopens} "
            f"re-open(s), {s.partials} partial(s), {s.push_events} push "
            f"event(s); byte-identical final documents: {s.byte_identical}; "
            f"retransmit savings vs store-and-forward: "
            f"{self.retransmit_savings} B; TTFR speedup: "
            f"{self.ttfr_speedup:.1f}x"
        )
        return f"{table}\n{extra}"


def _install(scenario: EvaluationScenario, schedule: Optional[FaultSchedule]) -> None:
    if schedule is not None and len(schedule):
        schedule.install(scenario.network)


def _upload_wire_bytes(
    scenario: EvaluationScenario, purposes: tuple[str, ...], since: float
) -> int:
    """Bytes the device actually put on the air for uploads.

    Purpose-filtered over the tracer's connection ledger (``upload-pi``
    for store-and-forward, ``session-stream`` for the chunk bursts), this
    is the wire-level cross-check for the retransmit ledger: a restart
    that re-sends a delivered frame shows up here; a dial that never got
    through does not.
    """
    device = scenario.platform.device.address
    return sum(
        rec.bytes_sent
        for rec in scenario.network.tracer.connections
        if rec.initiator == device
        and rec.opened_at >= since
        and any(rec.purpose.startswith(p) for p in purposes)
    )


def _verify_byte_identity(
    scenario: EvaluationScenario, outcomes: list[dict[str, Any]]
) -> bool:
    """Re-download every collected result plainly and compare bytes.

    Runs *after* the measured workload (its connections are not part of
    the comparison) — the streaming layer's contract is that the final
    document is exactly what store-and-forward would have delivered.
    """
    platform = scenario.platform
    sim = scenario.sim
    verdicts: list[bool] = []

    def verify() -> Generator:
        for out in outcomes:
            handle = out.get("handle")
            if handle is None or not out["ok"]:
                continue
            head, sep, _ = handle.ticket.partition("/t-")
            origin = head if sep else handle.gateway
            try:
                frame = yield from platform.netmanager.download_result(
                    handle.gateway, handle.ticket, origin=origin
                )
            except PDAgentError:
                continue  # result already expired; nothing to compare
            plain = decompress(platform.security.unprotect_result(frame))
            verdicts.append(plain == platform.db.get_result(handle.ticket))
        return True

    sim.run(until=sim.process(verify(), name="streaming-verify"))
    return all(verdicts)


def run_streaming_under_faults(
    seed: int = 0,
    n_tasks: int = DEFAULT_N_TASKS,
    n_transactions: int = DEFAULT_N_TXNS,
    schedule: Optional[FaultSchedule] = None,
    collector: Optional[TraceCollector] = None,
    label: str = "streaming/session",
) -> StreamingRunResult:
    """Run ``n_tasks`` periodic batches over chunked streaming sessions."""
    scenario = build_scenario(
        seed=seed,
        n_gateways=2,
        banks=BANKS,
        config=PDAgentConfig(
            selection_policy="first",
            session_enabled=True,
            session_chunk_bytes=CHUNK_BYTES,
        ),
    )
    sim = scenario.sim
    platform = scenario.platform
    _install(scenario, schedule)
    t_base = sim.now
    txns = scenario.transactions(n_transactions)
    outcomes: list[dict[str, Any]] = []
    sessions: list = []

    def task(k: int) -> Generator:
        yield sim.timeout(k * TASK_PERIOD_S + UPLOAD_LEAD_S)
        t0 = sim.now
        out: dict[str, Any] = {"task": k, "ok": False, "ttfr": None, "detail": ""}
        outcomes.append(out)
        task_id = platform.dispatcher.new_task_id()
        dispatch = None
        for attempt in range(DEPLOY_ATTEMPTS):
            try:
                dispatch = yield from platform.deploy_streaming(
                    "ebanking", {"transactions": txns},
                    stops=scenario.stops(), task_id=task_id,
                )
                break
            except PDAgentError as exc:
                out["detail"] = f"deploy failed: {exc}"
                yield sim.timeout(DEPLOY_RETRY_WAIT_S)
        if dispatch is None:
            return
        sessions.append(dispatch.session)
        out["handle"] = dispatch.handle
        for attempt in range(COLLECT_ATTEMPTS):
            try:
                result = yield from platform.collect_streaming(dispatch)
            except PDAgentError as exc:
                out["detail"] = f"collect failed: {exc}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            out["ok"] = result.status == "completed"
            out["detail"] = f"status {result.status!r}"
            break
        if out["ok"] and dispatch.session.first_partial_at is not None:
            out["ttfr"] = dispatch.session.first_partial_at - t0

    procs = [sim.process(task(k), name=f"stream-task:{k}") for k in range(n_tasks)]
    sim.run(until=sim.all_of(procs))
    connection_time = scenario.network.tracer.connection_time(
        platform.device.address, since=t_base
    )
    byte_identical = _verify_byte_identity(scenario, outcomes)
    if collector is not None:
        collector.add_run(label, scenario.network)
    return StreamingRunResult(
        approach="streaming",
        seed=seed,
        n_tasks=n_tasks,
        n_transactions=n_transactions,
        completed=sum(1 for o in outcomes if o["ok"]),
        connection_time=connection_time,
        retransmitted_bytes=platform.netmanager.retransmitted_bytes,
        uploaded_bytes=_upload_wire_bytes(
            scenario, ("session-stream",), t_base
        ),
        faults_injected=len(scenario.network.tracer.faults),
        ttfr=[o["ttfr"] for o in outcomes if o["ttfr"] is not None],
        chunks_sent=sum(s.chunks_sent for s in sessions),
        reopens=sum(s.reopens for s in sessions),
        partials=sum(len(s.partials) for s in sessions),
        push_events=sum(len(s.events) for s in sessions),
        byte_identical=byte_identical,
        outcomes=sorted(outcomes, key=lambda o: o["task"]),
    )


def run_store_forward_under_faults(
    seed: int = 0,
    n_tasks: int = DEFAULT_N_TASKS,
    n_transactions: int = DEFAULT_N_TXNS,
    schedule: Optional[FaultSchedule] = None,
    collector: Optional[TraceCollector] = None,
    label: str = "streaming/store-forward",
) -> StreamingRunResult:
    """The classic deploy/collect twin on the same workload and schedule.

    Time-to-first-result is the successful collect's completion time —
    store-and-forward shows the user nothing until the whole document is
    down.
    """
    scenario = build_scenario(
        seed=seed,
        n_gateways=2,
        banks=BANKS,
        config=PDAgentConfig(selection_policy="first"),
    )
    sim = scenario.sim
    platform = scenario.platform
    _install(scenario, schedule)
    t_base = sim.now
    txns = scenario.transactions(n_transactions)
    outcomes: list[dict[str, Any]] = []

    def task(k: int) -> Generator:
        yield sim.timeout(k * TASK_PERIOD_S + UPLOAD_LEAD_S)
        t0 = sim.now
        out: dict[str, Any] = {"task": k, "ok": False, "ttfr": None, "detail": ""}
        outcomes.append(out)
        task_id = platform.dispatcher.new_task_id()
        handle = None
        for attempt in range(DEPLOY_ATTEMPTS):
            try:
                handle = yield from platform.deploy(
                    "ebanking", {"transactions": txns},
                    stops=scenario.stops(), task_id=task_id,
                )
                break
            except PDAgentError as exc:
                out["detail"] = f"deploy failed: {exc}"
                yield sim.timeout(DEPLOY_RETRY_WAIT_S)
        if handle is None:
            return
        out["handle"] = handle
        for attempt in range(COLLECT_ATTEMPTS):
            try:
                # Realistic disconnected operation: the device re-dials and
                # polls (with the hop-progress adaptive interval) — the
                # same footing the streaming run's session polls are on.
                result = yield from platform.collect_poll(handle)
            except PDAgentError as exc:
                out["detail"] = f"collect failed: {exc}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            out["ok"] = result.status == "completed"
            out["detail"] = f"status {result.status!r}"
            break
        if out["ok"]:
            out["ttfr"] = sim.now - t0

    procs = [sim.process(task(k), name=f"sf-task:{k}") for k in range(n_tasks)]
    sim.run(until=sim.all_of(procs))
    if collector is not None:
        collector.add_run(label, scenario.network)
    return StreamingRunResult(
        approach="store-forward",
        seed=seed,
        n_tasks=n_tasks,
        n_transactions=n_transactions,
        completed=sum(1 for o in outcomes if o["ok"]),
        connection_time=scenario.network.tracer.connection_time(
            platform.device.address, since=t_base
        ),
        retransmitted_bytes=platform.netmanager.retransmitted_bytes,
        uploaded_bytes=_upload_wire_bytes(scenario, ("upload-pi",), t_base),
        faults_injected=len(scenario.network.tracer.faults),
        ttfr=[o["ttfr"] for o in outcomes if o["ttfr"] is not None],
        outcomes=sorted(outcomes, key=lambda o: o["task"]),
    )


def run_streaming_comparison(
    seed: int = 0,
    n_tasks: int = DEFAULT_N_TASKS,
    n_transactions: int = DEFAULT_N_TXNS,
    collector: Optional[TraceCollector] = None,
) -> StreamingComparison:
    """Both flows under identical copies of the reference fault schedule."""
    return StreamingComparison(
        streaming=run_streaming_under_faults(
            seed, n_tasks, n_transactions,
            schedule=reference_schedule(n_tasks, TASK_PERIOD_S),
            collector=collector,
        ),
        store_forward=run_store_forward_under_faults(
            seed, n_tasks, n_transactions,
            schedule=reference_schedule(n_tasks, TASK_PERIOD_S),
            collector=collector,
        ),
    )


def main(
    seed: int = 0, collector: Optional[TraceCollector] = None
) -> StreamingComparison:
    comparison = run_streaming_comparison(seed=seed, collector=collector)
    print(comparison.render())
    return comparison


if __name__ == "__main__":  # pragma: no cover
    main()
