"""Experiment CLI: regenerate every paper result from one entry point.

Usage (installed as ``pdagent-experiments``)::

    pdagent-experiments all          # everything below
    pdagent-experiments fig12        # Figure 12 series
    pdagent-experiments fig13        # Figure 13 trials + variances
    pdagent-experiments faults       # Fig. 12 workload under a fault schedule
    pdagent-experiments claims       # C1 code sizes, C2 footprint
    pdagent-experiments ablations    # A1-A4
    pdagent-experiments extensions   # E1-E4

``--csv DIR`` additionally writes the figure data as CSV files (full
precision) into ``DIR`` for external plotting.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import ablations, claims, extensions, faults, fig12, fig13

__all__ = ["main"]


def _run_fig12(args):
    result = fig12.main(seed=args.seed)
    if args.csv:
        path = os.path.join(args.csv, "fig12.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


def _run_fig13(args):
    result = fig13.main(base_seed=args.seed + 100)
    if args.csv:
        path = os.path.join(args.csv, "fig13.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


_EXPERIMENTS = {
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "faults": lambda args: faults.main(seed=args.seed),
    "claims": lambda args: claims.main(),
    "ablations": lambda args: ablations.main(),
    "extensions": lambda args: extensions.main(),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pdagent-experiments",
        description="Regenerate the PDAgent paper's evaluation results",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which result to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base master seed (default 0)"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write figure data as CSV into DIR",
    )
    args = parser.parse_args(argv)
    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
    if args.experiment == "all":
        for name in ("fig12", "fig13", "faults", "claims", "ablations", "extensions"):
            print(f"\n### {name} " + "#" * (60 - len(name)))
            _EXPERIMENTS[name](args)
    else:
        _EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
