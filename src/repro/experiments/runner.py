"""Experiment CLI: regenerate every paper result from one entry point.

Usage (installed as ``pdagent-experiments``)::

    pdagent-experiments all          # everything below
    pdagent-experiments fig12        # Figure 12 series
    pdagent-experiments fig13        # Figure 13 trials + variances
    pdagent-experiments faults       # Fig. 12 workload under a fault schedule
    pdagent-experiments overload     # dispatch storm: protected vs unprotected
    pdagent-experiments fleet        # roamed retries: fleet tier vs baseline
    pdagent-experiments streaming    # resumable sessions vs store-and-forward
    pdagent-experiments churn        # rolling restart of every fleet member
    pdagent-experiments diversity    # diurnal + flash-crowd day, full app mix
    pdagent-experiments scale        # device-population kernel sweep
                                     #   (--shards N for the sharded kernel;
                                     #   not part of "all" — it is the perf
                                     #   bench, see BENCH_scale.json)
    pdagent-experiments claims       # C1 code sizes, C2 footprint
    pdagent-experiments ablations    # A1-A4
    pdagent-experiments extensions   # E1-E4

``--csv DIR`` additionally writes the figure data as CSV files (full
precision) into ``DIR`` for external plotting.

``--trace PATH`` captures the full telemetry stream (spans, instants,
fault/connection ledgers, metric series) of every traced experiment run
into PATH — newline-delimited JSON by default, or the Chrome trace_event
format (open in Perfetto / ``chrome://tracing``) when PATH ends in
``.json`` or ``--trace-format chrome`` is given.  Inspect the JSONL with
``pdagent-trace summary PATH``.  Tracing covers fig12, fig13, faults and
overload (the figure-producing simulations); claims/ablations/extensions
run many heterogeneous micro-benchmarks and are not traced.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..telemetry.exporters import TraceCollector
from . import (
    ablations,
    churn,
    claims,
    diversity,
    extensions,
    faults,
    fig12,
    fig13,
    fleet,
    overload,
    scale,
    streaming,
)

__all__ = ["main"]

#: Experiments whose runs are registered with the --trace collector.
_TRACED = (
    "fig12", "fig13", "faults", "overload", "fleet", "streaming", "churn",
    "diversity",
)


def _ns(args) -> tuple[int, ...]:
    """Transaction-count sweep, capped by --max-n (CI smoke runs)."""
    upper = args.max_n if args.max_n else 10
    return tuple(range(1, upper + 1))


def _run_fig12(args, collector=None):
    result = fig12.main(seed=args.seed, ns=_ns(args), collector=collector)
    if args.csv:
        path = os.path.join(args.csv, "fig12.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


def _run_fig13(args, collector=None):
    result = fig13.main(base_seed=args.seed + 100, ns=_ns(args), collector=collector)
    if args.csv:
        path = os.path.join(args.csv, "fig13.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


def _run_overload(args, collector=None):
    """Device-population sweep; --max-n caps the largest population."""
    populations = overload.DEFAULT_POPULATIONS
    if args.max_n:
        populations = tuple(n for n in populations if n <= args.max_n) or (
            args.max_n,
        )
    result = overload.main(
        seed=args.seed, populations=populations, collector=collector
    )
    if args.csv:
        path = os.path.join(args.csv, "overload.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


def _run_fleet(args, collector=None):
    """Device-population sweep; --max-n caps the largest population."""
    populations = fleet.DEFAULT_POPULATIONS
    if args.max_n:
        populations = tuple(n for n in populations if n <= args.max_n) or (
            args.max_n,
        )
    result = fleet.main(
        seed=args.seed, populations=populations, collector=collector
    )
    if args.csv:
        path = os.path.join(args.csv, "fleet.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


def _run_churn(args, collector=None):
    """Device-population sweep; --max-n caps the largest population."""
    populations = churn.DEFAULT_POPULATIONS
    if args.max_n:
        populations = tuple(n for n in populations if n <= args.max_n) or (
            args.max_n,
        )
    result = churn.main(
        seed=args.seed, populations=populations, collector=collector
    )
    if args.csv:
        path = os.path.join(args.csv, "churn.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


def _run_scale(args, collector=None):
    """Device-population sweep; --max-n caps the largest population and
    --shards runs every row on the sharded kernel."""
    populations = scale.DEFAULT_POPULATIONS
    if args.max_n:
        populations = tuple(n for n in populations if n <= args.max_n) or (
            args.max_n,
        )
    result = scale.run_scale_sweep(
        populations,
        seed=args.seed,
        shards=getattr(args, "shards", 0) or 0,
        executor=getattr(args, "executor", "inline"),
    )
    print(result.render())
    if args.csv:
        path = os.path.join(args.csv, "scale.csv")
        rows = ["population,gateways,shards,mode,events_processed,"
                "events_per_sec,events_per_sec_per_shard"]
        rows += [
            f"{r.population},{r.gateways},{r.shards},{r.mode},"
            f"{r.events_processed},{r.events_per_sec:.1f},"
            f"{r.events_per_sec_per_shard:.1f}"
            for r in result.populations
        ]
        with open(path, "w") as fh:
            fh.write("\n".join(rows) + "\n")
        print(f"[csv] wrote {path}")
    return result


def _run_diversity(args, collector=None):
    """Diurnal + flash-crowd day; --max-n caps the device population."""
    n_devices = diversity.DEFAULT_DEVICES
    if args.max_n:
        n_devices = min(n_devices, max(args.max_n, 1))
    result = diversity.main(
        seed=args.seed, n_devices=n_devices, collector=collector
    )
    if args.csv:
        path = os.path.join(args.csv, "diversity.csv")
        with open(path, "w") as fh:
            fh.write(result.to_csv())
        print(f"[csv] wrote {path}")
    return result


_EXPERIMENTS = {
    "fig12": _run_fig12,
    "diversity": _run_diversity,
    "scale": _run_scale,
    "churn": _run_churn,
    "fig13": _run_fig13,
    "overload": _run_overload,
    "fleet": _run_fleet,
    "faults": lambda args, collector=None: faults.main(
        seed=args.seed, collector=collector
    ),
    "streaming": lambda args, collector=None: streaming.main(
        seed=args.seed, collector=collector
    ),
    "claims": lambda args, collector=None: claims.main(),
    "ablations": lambda args, collector=None: ablations.main(),
    "extensions": lambda args, collector=None: extensions.main(),
}


def _write_trace(collector: TraceCollector, path: str, fmt: str) -> None:
    if fmt == "auto":
        fmt = "chrome" if path.endswith(".json") else "jsonl"
    if fmt == "chrome":
        collector.write_chrome(path)
    else:
        collector.write_jsonl(path)
    print(f"[trace] wrote {path} ({fmt}, {len(collector.runs)} run(s))")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pdagent-experiments",
        description="Regenerate the PDAgent paper's evaluation results",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which result to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base master seed (default 0)"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write figure data as CSV into DIR",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="capture the telemetry stream of traced experiments into PATH",
    )
    parser.add_argument(
        "--trace-format",
        choices=("auto", "jsonl", "chrome"),
        default="auto",
        help="trace file format (auto: chrome when PATH ends in .json)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="cap the transaction sweep at N (smaller, faster runs)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="scale: run the sweep on a sharded kernel with N shards",
    )
    parser.add_argument(
        "--executor",
        choices=("inline", "serial", "process"),
        default="inline",
        help="scale: sharded executor (inline exact merge, or "
        "region-partitioned serial/multiprocessing sub-simulations)",
    )
    args = parser.parse_args(argv)
    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
    collector = TraceCollector() if args.trace else None
    if args.experiment == "all":
        for name in (
            "fig12", "fig13", "faults", "overload", "fleet", "streaming",
            "churn", "diversity", "claims", "ablations", "extensions",
        ):
            print(f"\n### {name} " + "#" * (60 - len(name)))
            _EXPERIMENTS[name](args, collector=collector)
    else:
        _EXPERIMENTS[args.experiment](args, collector=collector)
    if collector is not None:
        if collector.runs:
            _write_trace(collector, args.trace, args.trace_format)
        else:
            print(f"[trace] {args.experiment} produces no traced runs; nothing written")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
