"""The evaluation scenario: the paper's §4 runtime environment, in one place.

Builds (per run, from a seed):

* central server + one PDAgent gateway (MAS co-located),
* two bank sites, each hosting a MAS :class:`BankServiceAgent` *and* a
  :class:`BankWebServer` front (so every approach hits the same backend
  think time),
* a PDA on a wireless link (client-server + PDAgent run from it),
* a desktop on a wired LAN (the web-based approach runs from it).

Each (approach, n-transactions, trial) measurement uses a **fresh** scenario
so connection ledgers and RNG streams are independent — the paper's "test
runs" are reproduced as distinct master seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..apps.ebanking import (
    BankServiceAgent,
    EBankingAgent,
    ebanking_service_code,
    make_transactions,
)
from ..baselines import (
    AgentServer,
    BankWebServer,
    ClientAgentServerRunner,
    ClientServerRunner,
    InstalledApp,
    WebBasedRunner,
)
from ..core import Deployment, DeploymentBuilder, PDAgentConfig, PDAgentPlatform
from ..device import Device
from ..mas import Stop

__all__ = [
    "EvaluationScenario",
    "PDAgentRunMetrics",
    "build_scenario",
    "run_pdagent_batch",
    "DEFAULT_BANKS",
]

DEFAULT_BANKS = ("bank-a", "bank-b")


@dataclass
class PDAgentRunMetrics:
    """PDAgent measurements for one batch, using the paper's definitions.

    ``completion_time`` = time sending the PI + time downloading the result
    (both online phases only — §4's stated formula).  ``connection_time``
    is the ledger total for the same two exchanges.
    """

    n_transactions: int
    upload_time: float
    download_time: float
    connection_time: float
    connections: int
    elapsed_total: float
    pi_wire_bytes: int
    result: Any
    gateway: str = ""

    @property
    def completion_time(self) -> float:
        return self.upload_time + self.download_time


@dataclass
class EvaluationScenario:
    """A wired-up §4 environment plus its approach runners."""

    deployment: Deployment
    platform: PDAgentPlatform
    pda: Device
    desktop: Device
    banks: list[str]
    gateway_address: str
    bank_services: dict[str, BankServiceAgent]
    bank_webs: dict[str, BankWebServer]
    agent_server: Optional[AgentServer] = None

    @property
    def sim(self):
        return self.deployment.sim

    @property
    def network(self):
        return self.deployment.network

    # -- workload ------------------------------------------------------------
    def transactions(self, count: int) -> list[dict[str, Any]]:
        return make_transactions(self.banks, count)

    def stops(self) -> list[Stop]:
        return [Stop(bank, task="banking") for bank in self.banks]

    # -- approach runners ------------------------------------------------------
    def client_server_runner(self) -> ClientServerRunner:
        return ClientServerRunner(self.pda)

    def web_based_runner(self) -> WebBasedRunner:
        return WebBasedRunner(self.desktop)

    def client_agent_server_runner(self) -> ClientAgentServerRunner:
        if self.agent_server is None:
            raise RuntimeError("scenario built without an agent server")
        return ClientAgentServerRunner(self.pda, self.agent_server.address)


def build_scenario(
    seed: int = 0,
    config: Optional[PDAgentConfig] = None,
    banks: tuple[str, ...] = DEFAULT_BANKS,
    n_gateways: int = 1,
    with_agent_server: bool = False,
    wireless: str = "GPRS",
    mas_flavour: str = "aglets",
    device_profile: str = "PDA",
    prewarm: bool = True,
    shards: Optional[int] = None,
) -> EvaluationScenario:
    """Construct and (optionally) pre-warm the §4 evaluation environment.

    Pre-warming performs the one-time online steps — gateway-list download,
    RTT probing, and the e-banking subscription — so the measured runs
    contain only the steady-state traffic the paper measures.

    ``shards`` runs the scenario on the sharded kernel; the timeline (and
    every exported trace byte) is identical to the single-heap run.
    """
    builder = DeploymentBuilder(
        master_seed=seed, config=config, mas_flavour=mas_flavour,
        shards=shards,
    )
    builder.add_central("central")
    for i in range(n_gateways):
        builder.add_gateway(f"gw-{i}")
    bank_services: dict[str, BankServiceAgent] = {}
    for bank in banks:
        service = BankServiceAgent(bank_name=bank)
        bank_services[bank] = service
        builder.add_site(bank, services=[service])
    builder.add_device("pda", profile=device_profile, wireless=wireless)
    builder.add_device("desktop", profile="DESKTOP", wireless="LAN")
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    deployment = builder.build()

    # Bank web fronts share the bank nodes (and their think-time model).
    bank_webs = {
        bank: BankWebServer(
            deployment.network.node(bank),
            think_time=bank_services[bank].processing_time,
        )
        for bank in banks
    }

    agent_server: Optional[AgentServer] = None
    if with_agent_server:
        # The agent server reuses gateway 0's MAS (a combined web+MA host).
        gw0 = "gw-0"
        agent_server = AgentServer(
            deployment.network, gw0, deployment.mas(gw0)
        )
        agent_server.install(
            InstalledApp(
                service="ebanking",
                agent_class="EBankingAgent",
                itinerary_builder=lambda params, origin: [
                    Stop(b, task="banking") for b in banks
                ],
            )
        )

    scenario = EvaluationScenario(
        deployment=deployment,
        platform=deployment.platform("pda"),
        pda=deployment.devices["pda"],
        desktop=deployment.devices["desktop"],
        banks=list(banks),
        gateway_address="gw-0",
        bank_services=bank_services,
        bank_webs=bank_webs,
        agent_server=agent_server,
    )
    if prewarm:
        _prewarm(scenario)
    return scenario


def _prewarm(scenario: EvaluationScenario) -> None:
    """One-time online setup: address list, probes, subscription."""

    def setup() -> Generator:
        platform = scenario.platform
        yield from platform.selector.refresh_list()
        if platform.config.selection_policy == "nearest":
            yield from platform.selector.probe_all()
        yield from platform.subscribe(
            "ebanking", gateway=scenario.gateway_address
        )
        return True

    sim = scenario.sim
    proc = sim.process(setup(), name="scenario-prewarm")
    sim.run(until=proc)


def run_pdagent_batch(
    scenario: EvaluationScenario,
    n_transactions: int,
    gateway: Optional[str] = "default",
) -> PDAgentRunMetrics:
    """Execute one PDAgent batch and measure it the way §4 does.

    Online phase 1: upload the PI.  Offline: the agent travels (the device
    may power its radio down).  Online phase 2: download the result once the
    agent is back — the experiment uses the gateway's completion event as
    the "user reconnects later" oracle, so no polling traffic is added
    (matching the paper's two-connection accounting).
    """
    sim = scenario.sim
    tracer = scenario.network.tracer
    platform = scenario.platform
    txns = scenario.transactions(n_transactions)
    target = scenario.gateway_address if gateway == "default" else gateway

    def run() -> Generator:
        t_start = sim.now
        mark = len(tracer.connections)
        t0 = sim.now
        handle = yield from platform.deploy(
            "ebanking",
            {"transactions": txns},
            stops=scenario.stops(),
            gateway=target,
        )
        upload_time = sim.now - t0
        gateway = scenario.deployment.gateway(handle.gateway)
        yield gateway.ticket(handle.ticket).completed
        t1 = sim.now
        result = yield from platform.collect(handle)
        download_time = sim.now - t1
        conn_records = tracer.connections[mark:]
        mine = [r for r in conn_records if r.initiator == platform.device.address]
        return PDAgentRunMetrics(
            n_transactions=n_transactions,
            upload_time=upload_time,
            download_time=download_time,
            connection_time=sum(r.duration(now=sim.now) for r in mine),
            connections=len(mine),
            elapsed_total=sim.now - t_start,
            pi_wire_bytes=sum(r.bytes_sent for r in mine),
            result=result,
            gateway=handle.gateway,
        )

    proc = sim.process(run(), name=f"pdagent-batch-{n_transactions}")
    return sim.run(until=proc)
