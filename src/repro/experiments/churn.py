"""Churn experiment: rolling restart of the whole fleet under live traffic.

The membership-lifecycle capstone.  Every gateway in a three-member fleet
is taken through a full maintenance cycle — graceful ``drain`` (state
handed to ring successors), a crash window, then ``restart`` (rejoin +
rebalance) — one member at a time, while a roaming device population keeps
uploading, retrying at other gateways, and collecting results through
gateways that never saw the upload.

Per device ``k``: upload targeted at ``gw-(k%3)``, an immediate roamed
retry of the *same task_id* at ``gw-((k+1)%3)``, and a collect starting at
``gw-((k+2)%3)``.  Any of those gateways may be draining or down when the
device arrives; the device then walks the ring (mirroring the successor
hint a draining gateway returns) until a healthy member answers.  Collects
are staggered so they land throughout the rolling restart.

Two modes face identical seeds, populations and timing:

* **churn** — the rolling restart runs; the fleet must still complete
  every task exactly once and serve every collect.
* **control** — same traffic, no restarts; the self-relative overhead and
  determinism reference.

The headline: 100% completion, zero duplicate dispatches and full
collect-anywhere *through* three drains, three crashes and three rejoins,
with a byte-identical replay under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..apps.ebanking import (
    BankServiceAgent,
    EBankingAgent,
    ebanking_service_code,
    make_transactions,
)
from ..core import Deployment, DeploymentBuilder, PDAgentConfig
from ..core.errors import PDAgentError
from ..device import link_profile
from ..mas import Stop
from ..telemetry.exporters import TraceCollector
from .report import format_table

__all__ = [
    "ChurnRunResult",
    "ChurnSweepResult",
    "churn_config",
    "run_churn",
    "run_churn_sweep",
    "main",
]

GATEWAYS = ("gw-0", "gw-1", "gw-2")
BANKS = ("bank-a", "bank-b")
ACCESS_POINT = "ap"

#: Device populations swept (CI smoke caps this via ``--max-n``).
DEFAULT_POPULATIONS = (3, 6, 9)

#: Device ``k`` uploads at ``k * STAGGER_S``.  The stagger is deliberately
#: wide: uploads keep arriving *throughout* the rolling restart below, so
#: some provably land on a draining member (structured 503 + successor
#: hint) or a crashed one (refused connection) and must walk the ring.
STAGGER_S = 2.0
N_TXNS = 1

#: The rolling restart: the first drain begins at ``ROLL_START_S``.  After
#: a member's drain completes it *dwells* for ``ROLL_DWELL_S`` — drained
#: but still up, refusing every upload with the structured 503 + successor
#: hint (the operator watching the drain settle before stopping the
#: process).  It is then crashed for ``ROLL_DOWN_S``, restarted, and given
#: ``ROLL_GAP_S`` to rejoin and rebalance before the next member's turn.
#: Exactly one member is ever in maintenance at a time.
ROLL_START_S = 5.0
ROLL_DWELL_S = 2.0
ROLL_DOWN_S = 3.0
ROLL_GAP_S = 3.0

#: Collects are spread across the whole roll so some provably land on a
#: draining or crashed gateway and must walk the ring.
COLLECT_AT_S = 6.0
COLLECT_SPREAD_S = 2.0
COLLECT_ATTEMPTS = 12
COLLECT_RETRY_WAIT_S = 2.0


def churn_config() -> PDAgentConfig:
    """The fleet tier with the membership lifecycle fully armed."""
    return PDAgentConfig(
        selection_policy="first",
        retry_deadline_s=600.0,
        fleet_enabled=True,
        storage_backend="sqlite",
        dedup_ttl_s=300.0,
        fleet_heartbeat_interval_s=1.0,
        fleet_suspicion_timeout_s=5.0,
        fleet_drain_timeout_s=15.0,
    )


@dataclass
class ChurnRunResult:
    """One (population, mode) run's aggregates."""

    mode: str
    seed: int
    n_devices: int
    completed: int
    collected_elsewhere: int
    dispatches: int
    duplicate_dispatches: int
    drains_completed: int
    migrated_out: int
    rebalanced: int
    claims_stale: int
    drain_refusals: int
    drain_redirects: int
    marked_down: int
    final_epoch: int
    sim_end: float = 0.0
    events_processed: int = 0
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n_devices if self.n_devices else 0.0

    def replay_key(self) -> tuple:
        """Everything a byte-identical replay must reproduce."""
        return (
            self.completed,
            self.collected_elsewhere,
            self.dispatches,
            self.duplicate_dispatches,
            self.drains_completed,
            self.migrated_out,
            self.rebalanced,
            self.claims_stale,
            self.final_epoch,
            self.sim_end,
            self.events_processed,
            tuple(tuple(sorted(o.items())) for o in self.outcomes),
        )


def _build(seed: int, n_devices: int) -> Deployment:
    builder = DeploymentBuilder(master_seed=seed, config=churn_config())
    builder.add_central("central")
    for gw in GATEWAYS:
        builder.add_gateway(gw)
    for bank in BANKS:
        builder.add_site(bank, services=[BankServiceAgent(bank_name=bank)])
    lan = link_profile("LAN")
    builder.network.add_node(ACCESS_POINT, kind="router")
    builder.network.add_duplex_link(ACCESS_POINT, "backbone", lan)
    for k in range(n_devices):
        builder.add_device(
            f"pda-{k}", profile="PDA", wireless="WLAN", attach_to=ACCESS_POINT
        )
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    deployment = builder.build()
    _prewarm(deployment, n_devices)
    return deployment


def _prewarm(deployment: Deployment, n_devices: int) -> None:
    """Address list + subscription per device, before the measured phase."""
    sim = deployment.sim

    def setup(k: int) -> Generator:
        platform = deployment.platform(f"pda-{k}")
        yield from platform.selector.refresh_list()
        yield from platform.subscribe("ebanking", gateway=GATEWAYS[0])
        return True

    procs = [
        sim.process(setup(k), name=f"churn-prewarm:{k}")
        for k in range(n_devices)
    ]
    sim.run(until=sim.all_of(procs))


def run_churn(
    seed: int = 0,
    n_devices: int = 6,
    churn: bool = True,
    collector: Optional[TraceCollector] = None,
    label: str = "",
) -> ChurnRunResult:
    """One population under one mode; same seed ⇒ identical replay.

    A task succeeds when a collect — retried around drains and crash
    windows, walking the ring from its preferred gateway — returns status
    ``"completed"``.
    """
    mode = "churn" if churn else "control"
    deployment = _build(seed, n_devices)
    sim = deployment.sim
    network = deployment.network
    txns = make_transactions(list(BANKS), N_TXNS)
    stops = [Stop(bank, task="banking") for bank in BANKS]
    outcomes: list[dict[str, Any]] = []

    def deploy_walking(platform, task_id: str, preferred: int) -> Generator:
        """Upload at the preferred gateway, walking the ring on refusal.

        A draining gateway answers with a structured 503 naming its ring
        successor; a crashed one refuses the connection.  Either way the
        device's reaction is the same — try the next member — which is
        exactly what the successor hint tells it to do in a 3-ring.
        """
        last: Optional[PDAgentError] = None
        for attempt in range(len(GATEWAYS) * 3):
            gw = GATEWAYS[(preferred + attempt) % len(GATEWAYS)]
            try:
                handle = yield from platform.deploy(
                    "ebanking", {"transactions": txns}, stops=stops,
                    gateway=gw, task_id=task_id,
                )
                return handle
            except PDAgentError as exc:
                last = exc
                yield sim.timeout(0.5)
        raise last  # pragma: no cover - the walk always finds a member

    def task(k: int) -> Generator:
        platform = deployment.platform(f"pda-{k}")
        out: dict[str, Any] = {
            "device": k, "ok": False, "detail": "",
            "upload": "", "collect": "",
        }
        outcomes.append(out)
        yield sim.timeout(k * STAGGER_S)
        task_id = platform.dispatcher.new_task_id()
        try:
            handle = yield from deploy_walking(platform, task_id, k)
        except PDAgentError as exc:
            out["detail"] = f"upload failed: {exc}"
            return
        out["upload"] = handle.gateway
        # The roamed retry: same task_id through the next gateway over.
        # The fleet claim protocol must bind it to the winning ticket even
        # if ownership moved an epoch ago.
        try:
            handle = yield from deploy_walking(platform, task_id, k + 1)
        except PDAgentError as exc:
            out["detail"] = f"roamed retry failed: {exc}"
        # Collect through a third gateway, starting mid-roll; rotate on
        # failure — collect-anywhere means any live member can serve it.
        start = COLLECT_AT_S + k * COLLECT_SPREAD_S
        if sim.now < start:
            yield sim.timeout(start - sim.now)
        last = ""
        for attempt in range(COLLECT_ATTEMPTS):
            collect_gw = GATEWAYS[(k + 2 + attempt) % len(GATEWAYS)]
            try:
                result = yield from platform.collect(handle, via=collect_gw)
            except PDAgentError as exc:
                last = f"collect failed: {exc}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            if result.status != "completed":
                last = f"status {result.status!r}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            out["ok"] = True
            out["collect"] = collect_gw
            out["detail"] = "status 'completed'"
            return
        out["detail"] = last

    def roll() -> Generator:
        """The rolling restart: drain → crash → restart, member by member."""
        yield sim.timeout(ROLL_START_S)
        for name in GATEWAYS:
            gateway = deployment.gateway(name)
            migrated = yield from gateway.drain()
            network.tracer.log_fault(
                "gateway-drain", name, detail=f"{migrated} item(s) handed off"
            )
            yield sim.timeout(ROLL_DWELL_S)
            gateway.crash()
            yield sim.timeout(ROLL_DOWN_S)
            rebuilt = gateway.restart()
            network.tracer.log_fault(
                "gateway-restart", name,
                detail=f"{rebuilt} dedup bindings rebuilt",
            )
            yield sim.timeout(ROLL_GAP_S)

    procs = [
        sim.process(task(k), name=f"churn-task:{k}")
        for k in range(n_devices)
    ]
    if churn:
        procs.append(sim.process(roll(), name="churn-roll"))
    sim.run(until=sim.all_of(procs))
    if collector is not None:
        collector.add_run(label or f"churn/{mode}-{n_devices}", network)
    counters = network.tracer.counters
    # Fleet migration is at-least-once: a lost ack may leave the same
    # ticket id on two members.  A *duplicate dispatch* is therefore a
    # task with more than one distinct dispatched ticket identity.
    per_task: dict[str, set] = {}
    for gw in GATEWAYS:
        for t in deployment.gateway(gw).tickets():
            if t.agent_id and t.task_id:
                per_task.setdefault(t.task_id, set()).add(t.ticket_id)
    view = deployment.fleet.view
    return ChurnRunResult(
        mode=mode,
        seed=seed,
        n_devices=n_devices,
        completed=sum(1 for o in outcomes if o["ok"]),
        collected_elsewhere=sum(
            1 for o in outcomes if o["ok"] and o["collect"] != o["upload"]
        ),
        dispatches=sum(len(ids) for ids in per_task.values()),
        duplicate_dispatches=sum(
            len(ids) - 1 for ids in per_task.values() if len(ids) > 1
        ),
        drains_completed=counters.get("fleet.drains_completed", 0),
        migrated_out=counters.get("fleet.migrated_out", 0),
        rebalanced=counters.get("fleet.rebalanced", 0),
        claims_stale=counters.get("fleet.claims_stale", 0),
        drain_refusals=counters.get("gateway.drain_refusals", 0),
        drain_redirects=counters.get("device_drain_redirects", 0),
        marked_down=counters.get("fleet.marked_down", 0),
        final_epoch=view.epoch,
        sim_end=sim.now,
        events_processed=sim.events_processed,
        outcomes=sorted(outcomes, key=lambda o: o["device"]),
    )


@dataclass
class ChurnSweepResult:
    """Churn vs no-churn control across the population sweep (same seeds)."""

    seed: int
    populations: tuple[int, ...]
    churn: list[ChurnRunResult]
    control: list[ChurnRunResult]

    def pairs(self) -> list[tuple[ChurnRunResult, ChurnRunResult]]:
        return list(zip(self.churn, self.control))

    def rows(self) -> list[list]:
        rows = []
        for pair in self.pairs():
            for run in pair:
                rows.append(
                    [
                        run.n_devices,
                        run.mode,
                        f"{run.completed}/{run.n_devices}",
                        run.collected_elsewhere,
                        run.duplicate_dispatches,
                        run.drains_completed,
                        run.migrated_out,
                        run.rebalanced,
                        run.drain_refusals,
                        run.final_epoch,
                    ]
                )
        return rows

    def render(self) -> str:
        table = format_table(
            [
                "devices",
                "mode",
                "completed",
                "collect-anywhere",
                "dup dispatches",
                "drains",
                "migrated",
                "rebalanced",
                "refusals",
                "epoch",
            ],
            self.rows(),
            title=(
                "Churn: rolling restart of all "
                f"{len(GATEWAYS)} fleet members under roaming traffic"
            ),
        )
        worst = self.pairs()[-1]
        extra = (
            f"At n={worst[0].n_devices}: the roll drained "
            f"{worst[0].drains_completed} member(s), migrated "
            f"{worst[0].migrated_out} item(s), reached epoch "
            f"{worst[0].final_epoch}, and still completed "
            f"{worst[0].completed}/{worst[0].n_devices} task(s) with "
            f"{worst[0].duplicate_dispatches} duplicate(s); the quiet "
            f"control completed {worst[1].completed}/{worst[1].n_devices}"
        )
        return f"{table}\n{extra}"

    def to_csv(self) -> str:
        lines = [
            "devices,mode,completed,completion_rate,collected_elsewhere,"
            "dispatches,duplicate_dispatches,drains_completed,migrated_out,"
            "rebalanced,claims_stale,drain_refusals,drain_redirects,"
            "marked_down,final_epoch,sim_end,events_processed"
        ]
        for pair in self.pairs():
            for run in pair:
                lines.append(
                    f"{run.n_devices},{run.mode},{run.completed},"
                    f"{run.completion_rate!r},{run.collected_elsewhere},"
                    f"{run.dispatches},{run.duplicate_dispatches},"
                    f"{run.drains_completed},{run.migrated_out},"
                    f"{run.rebalanced},{run.claims_stale},"
                    f"{run.drain_refusals},{run.drain_redirects},"
                    f"{run.marked_down},{run.final_epoch},"
                    f"{run.sim_end!r},{run.events_processed}"
                )
        return "\n".join(lines) + "\n"


def run_churn_sweep(
    seed: int = 0,
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    collector: Optional[TraceCollector] = None,
) -> ChurnSweepResult:
    """Both modes per population, same seeds, identical timing."""
    churn_runs, control_runs = [], []
    for n in populations:
        churn_runs.append(
            run_churn(
                seed, n, churn=True,
                collector=collector, label=f"churn/churn-{n}",
            )
        )
        control_runs.append(
            run_churn(
                seed, n, churn=False,
                collector=collector, label=f"churn/control-{n}",
            )
        )
    return ChurnSweepResult(
        seed=seed,
        populations=tuple(populations),
        churn=churn_runs,
        control=control_runs,
    )


def main(
    seed: int = 0,
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    collector: Optional[TraceCollector] = None,
) -> ChurnSweepResult:
    result = run_churn_sweep(
        seed=seed, populations=populations, collector=collector
    )
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
