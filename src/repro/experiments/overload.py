"""Overload experiment: graceful degradation vs collapse under retry storms.

The paper positions the gateway tier as the tier that absorbs "heavy
traffic from millions of users" on behalf of weak wireless devices; this
experiment makes that claim measurable at simulation scale.  A growing
population of PDAs all dispatch an e-banking agent through a *single*
deliberately under-provisioned gateway (one dispatch worker, a fixed
per-dispatch cost) while a fault schedule cuts the gateway's uplink
mid-burst.  Outages that swallow in-flight *responses* are the nasty case:
the agent was dispatched but the device never learned its ticket, so it
retries — a retry storm against an already-loaded gateway.

Two configurations face the same seed, population and fault schedule:

* **protected** — PR-3's overload layer on: bounded intake queues, a token
  bucket, 503 load sheds with ``Retry-After`` (breaker-neutral), and the
  exactly-once dedup table, so a retried upload lands on its existing
  ticket without paying the dispatch cost again.
* **unprotected** — admission control *and* dedup off: the same finite
  worker pool behind an unbounded queue.  A retried frame trips the
  nonce-replay 403, the application retries with a fresh dispatch, and the
  gateway happily runs **duplicate agents** — each one more load.

Reported per (population, mode): completion rate, p50/p99 task latency,
real dispatches vs duplicate dispatches, load sheds, dedup hits and
device-side retry totals.  The headline: the protected gateway sheds but
keeps p99 bounded and duplicates at zero; the unprotected one's tail and
duplicate count grow with the population.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..apps.ebanking import (
    BankServiceAgent,
    EBankingAgent,
    ebanking_service_code,
    make_transactions,
)
from ..core import Deployment, DeploymentBuilder, PDAgentConfig
from ..core.errors import PDAgentError
from ..device import link_profile
from ..mas import Stop
from ..simnet.faults import FaultSchedule, LinkDown
from ..telemetry.exporters import TraceCollector
from .report import format_table

__all__ = [
    "OverloadRunResult",
    "OverloadSweepResult",
    "overload_config",
    "overload_schedule",
    "percentile",
    "run_overload",
    "run_overload_sweep",
    "main",
]

GATEWAY = "gw-0"
BANKS = ("bank-a", "bank-b")

#: All PDAs share one access-point router; cutting its backbone uplink
#: severs every device<->gateway path at once while the wired side — the
#: gateway, the banks, the agents already touring — keeps working.  That
#: isolates the nasty failure: work done, response lost, device retries.
ACCESS_POINT = "ap"

#: Device populations swept (CI smoke caps this via ``--max-n``).
DEFAULT_POPULATIONS = (2, 4, 8, 12)

#: Device ``k`` submits its task at ``k * STAGGER_S`` — close enough to
#: pile up on the single dispatch worker, spread enough that arrival order
#: is deterministic.
STAGGER_S = 0.15
N_TXNS = 1

#: Application-level retry: on a failed deployment the user resubmits the
#: *same task* (same idempotency key) a little later.
APP_RETRY_ATTEMPTS = 4
APP_RETRY_WAIT_S = 10.0
COLLECT_ATTEMPTS = 3
COLLECT_RETRY_WAIT_S = 5.0


def overload_config(protected: bool) -> PDAgentConfig:
    """The experiment's gateway sizing; ``protected`` toggles PR-3's layer.

    One dispatch worker plus a fixed 1 s dispatch cost make the gateway
    the bottleneck by construction: every duplicate dispatch the
    unprotected gateway accepts costs another full worker-second, while
    the protected gateway's dedup fast path answers retries without
    touching the worker at all.  A generous retry budget keeps devices
    alive across the outage windows so the difference between the modes is
    the *gateway's* behaviour, not the devices giving up.
    """
    return PDAgentConfig(
        selection_policy="first",
        gateway_dispatch_workers=1,
        dispatch_cost_s=1.0,
        admission_queue_limit=2,
        admission_rate=4.0,
        admission_burst=4,
        shed_retry_after_s=1.5,
        retry_max_attempts=8,
        retry_deadline_s=600.0,
        retry_after_cap_s=30.0,
        admission_enabled=protected,
        dedup_enabled=protected,
    )


def overload_schedule() -> FaultSchedule:
    """Two gateway-uplink outages timed to swallow dispatch *responses*.

    With a 0.15 s submission stagger and ~0.25 s per dispatch, the first
    window (0.8 s in) opens while the single worker is still draining the
    initial burst: agents dispatched during the window complete, but their
    ticket responses die on the downed link, so those devices retry.  The
    second window catches the application-level resubmissions (~10 s after
    their failed deploys) for a second storm.  Times are offsets from
    workload start (:meth:`FaultSchedule.install` time).
    """
    schedule = FaultSchedule()
    schedule.add(LinkDown(ACCESS_POINT, "backbone", at=0.8, duration=5.0))
    schedule.add(LinkDown(ACCESS_POINT, "backbone", at=14.0, duration=4.0))
    return schedule


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 1] (nan when empty)."""
    if not values:
        return float("nan")
    xs = sorted(values)
    k = (len(xs) - 1) * p
    lo = int(k)
    hi = min(lo + 1, len(xs) - 1)
    return xs[lo] + (xs[hi] - xs[lo]) * (k - lo)


@dataclass
class OverloadRunResult:
    """One (population, mode) run's aggregates."""

    mode: str
    seed: int
    n_devices: int
    completed: int
    latencies: list[float]
    dispatches: int
    duplicate_dispatches: int
    sheds: int
    dedup_hits: int
    shed_waits: int
    transport_retries: int
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n_devices if self.n_devices else 0.0

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 0.99)


def _build(seed: int, n_devices: int, protected: bool) -> Deployment:
    builder = DeploymentBuilder(
        master_seed=seed, config=overload_config(protected)
    )
    builder.add_central("central")
    builder.add_gateway(GATEWAY)
    for bank in BANKS:
        builder.add_site(bank, services=[BankServiceAgent(bank_name=bank)])
    lan = link_profile("LAN")
    builder.network.add_node(ACCESS_POINT, kind="router")
    builder.network.add_link(ACCESS_POINT, "backbone", lan)
    builder.network.add_link("backbone", ACCESS_POINT, lan)
    for k in range(n_devices):
        builder.add_device(
            f"pda-{k}", profile="PDA", wireless="WLAN", attach_to=ACCESS_POINT
        )
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    deployment = builder.build()
    _prewarm(deployment, n_devices)
    return deployment


def _prewarm(deployment: Deployment, n_devices: int) -> None:
    """Address list + subscription per device, before the measured storm."""
    sim = deployment.sim

    def setup(k: int) -> Generator:
        platform = deployment.platform(f"pda-{k}")
        yield from platform.selector.refresh_list()
        yield from platform.subscribe("ebanking", gateway=GATEWAY)
        return True

    procs = [
        sim.process(setup(k), name=f"overload-prewarm:{k}")
        for k in range(n_devices)
    ]
    sim.run(until=sim.all_of(procs))


def run_overload(
    seed: int = 0,
    n_devices: int = 8,
    protected: bool = True,
    schedule: Optional[FaultSchedule] = None,
    collector: Optional[TraceCollector] = None,
    label: str = "",
) -> OverloadRunResult:
    """One population under one mode; same seed ⇒ identical replay.

    Every device pre-generates its task id and reuses it across
    application-level resubmissions, so the gateway can tell "the same
    task, retried" from "a new task" — the exactly-once contract under
    test.  A task succeeds when its ticket completes and the result
    collects with status ``"completed"``.
    """
    mode = "protected" if protected else "unprotected"
    deployment = _build(seed, n_devices, protected)
    sim = deployment.sim
    network = deployment.network
    if schedule is not None and len(schedule):
        schedule.install(network)
    txns = make_transactions(list(BANKS), N_TXNS)
    stops = [Stop(bank, task="banking") for bank in BANKS]
    outcomes: list[dict[str, Any]] = []
    latencies: list[float] = []

    def task(k: int) -> Generator:
        platform = deployment.platform(f"pda-{k}")
        yield sim.timeout(k * STAGGER_S)
        t0 = sim.now
        out: dict[str, Any] = {"device": k, "ok": False, "detail": ""}
        outcomes.append(out)
        task_id = platform.dispatcher.new_task_id()
        handle = None
        for attempt in range(APP_RETRY_ATTEMPTS):
            try:
                handle = yield from platform.deploy(
                    "ebanking",
                    {"transactions": txns},
                    stops=stops,
                    gateway=GATEWAY,
                    task_id=task_id,
                )
            except PDAgentError as exc:
                out["detail"] = f"deploy attempt {attempt + 1} failed: {exc}"
                yield sim.timeout(APP_RETRY_WAIT_S)
                continue
            ticket = deployment.gateway(GATEWAY).ticket(handle.ticket)
            disposition = yield ticket.completed
            if disposition == "completed":
                break
            # A "failed" finalization unbinds the dedup entry, so this
            # resubmission (same task id) legitimately dispatches afresh.
            out["detail"] = f"ticket finalized {disposition!r}"
            handle = None
            yield sim.timeout(APP_RETRY_WAIT_S)
        if handle is None:
            return
        for _ in range(COLLECT_ATTEMPTS):
            try:
                result = yield from platform.collect(handle)
            except PDAgentError as exc:
                out["detail"] = f"collect failed: {exc}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            out["ok"] = result.status == "completed"
            out["detail"] = f"status {result.status!r}"
            if out["ok"]:
                latencies.append(sim.now - t0)
            return

    procs = [
        sim.process(task(k), name=f"overload-task:{k}")
        for k in range(n_devices)
    ]
    sim.run(until=sim.all_of(procs))
    if collector is not None:
        collector.add_run(label or f"overload/{mode}-{n_devices}", network)
    counters = network.tracer.counters
    dispatched = [t for t in deployment.gateway(GATEWAY).tickets() if t.agent_id]
    per_task = Counter(t.task_id for t in dispatched if t.task_id)
    platforms = [deployment.platform(f"pda-{k}") for k in range(n_devices)]
    return OverloadRunResult(
        mode=mode,
        seed=seed,
        n_devices=n_devices,
        completed=sum(1 for o in outcomes if o["ok"]),
        latencies=sorted(latencies),
        dispatches=len(dispatched),
        duplicate_dispatches=sum(c - 1 for c in per_task.values() if c > 1),
        sheds=counters.get("gateway.shed", 0),
        dedup_hits=counters.get("gateway.dedup_hit", 0),
        shed_waits=sum(p.netmanager.shed_waits for p in platforms),
        transport_retries=sum(p.netmanager.retries for p in platforms),
        outcomes=sorted(outcomes, key=lambda o: o["device"]),
    )


@dataclass
class OverloadSweepResult:
    """Protected vs unprotected across the population sweep (same seeds)."""

    seed: int
    populations: tuple[int, ...]
    protected: list[OverloadRunResult]
    unprotected: list[OverloadRunResult]

    def pairs(self) -> list[tuple[OverloadRunResult, OverloadRunResult]]:
        return list(zip(self.protected, self.unprotected))

    def rows(self) -> list[list]:
        rows = []
        for prot, unprot in self.pairs():
            for run in (prot, unprot):
                rows.append(
                    [
                        run.n_devices,
                        run.mode,
                        f"{run.completed}/{run.n_devices}",
                        round(run.p50, 2),
                        round(run.p99, 2),
                        run.dispatches,
                        run.duplicate_dispatches,
                        run.sheds,
                        run.dedup_hits,
                        run.transport_retries + run.shed_waits,
                    ]
                )
        return rows

    def render(self) -> str:
        table = format_table(
            [
                "devices",
                "mode",
                "completed",
                "p50 (s)",
                "p99 (s)",
                "dispatches",
                "dup dispatches",
                "sheds",
                "dedup hits",
                "device retries",
            ],
            self.rows(),
            title=(
                "Overload: e-banking dispatch storm through one "
                "single-worker gateway under uplink outages"
            ),
        )
        worst = self.pairs()[-1]
        extra = (
            f"At n={worst[0].n_devices}: protected p99 "
            f"{worst[0].p99:.2f}s with {worst[0].duplicate_dispatches} "
            f"duplicate dispatch(es); unprotected p99 {worst[1].p99:.2f}s "
            f"with {worst[1].duplicate_dispatches}"
        )
        return f"{table}\n{extra}"

    def to_csv(self) -> str:
        lines = [
            "devices,mode,completed,completion_rate,p50_s,p99_s,"
            "dispatches,duplicate_dispatches,sheds,dedup_hits,"
            "shed_waits,transport_retries"
        ]
        for prot, unprot in self.pairs():
            for run in (prot, unprot):
                lines.append(
                    f"{run.n_devices},{run.mode},{run.completed},"
                    f"{run.completion_rate!r},{run.p50!r},{run.p99!r},"
                    f"{run.dispatches},{run.duplicate_dispatches},"
                    f"{run.sheds},{run.dedup_hits},{run.shed_waits},"
                    f"{run.transport_retries}"
                )
        return "\n".join(lines) + "\n"


def run_overload_sweep(
    seed: int = 0,
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    collector: Optional[TraceCollector] = None,
) -> OverloadSweepResult:
    """Both modes per population, fresh schedule each run, same seeds."""
    protected, unprotected = [], []
    for n in populations:
        protected.append(
            run_overload(
                seed, n, protected=True, schedule=overload_schedule(),
                collector=collector, label=f"overload/protected-{n}",
            )
        )
        unprotected.append(
            run_overload(
                seed, n, protected=False, schedule=overload_schedule(),
                collector=collector, label=f"overload/unprotected-{n}",
            )
        )
    return OverloadSweepResult(
        seed=seed,
        populations=tuple(populations),
        protected=protected,
        unprotected=unprotected,
    )


def main(
    seed: int = 0,
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    collector: Optional[TraceCollector] = None,
) -> OverloadSweepResult:
    result = run_overload_sweep(
        seed=seed, populations=populations, collector=collector
    )
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
