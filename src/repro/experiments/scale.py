"""Population-scale harness: N devices through a gateway fleet.

The paper's evaluation (§4) runs one PDA; the ROADMAP north star is a
platform that "serves millions of users".  This harness measures the
*simulator's* capacity to get there: a population sweep (100 → 5,000
devices, each running one full e-banking task through a shared gateway
fleet) reporting

* **kernel events/sec** — raw discrete-event throughput,
* **wall-clock per simulated task** — how expensive one user task is to
  simulate,
* **peak RSS** — memory high-water mark,

so performance regressions in any hot path (kernel, transport, codec,
crypto, telemetry) show up as a number, not an anecdote.  Results are
written as ``BENCH_scale.json`` — the bench trajectory's perf baseline,
which CI compares against (see ``benchmarks/bench_scale.py``).

Determinism: the sweep is seeded like every other experiment; for a fixed
(seed, population) the simulated timeline — ``events_processed``, task
completions, every connection record — is bit-reproducible.  Only the
wall-clock/RSS measurements vary run to run.
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Generator, Optional

from ..apps.ebanking import (
    BankServiceAgent,
    EBankingAgent,
    ebanking_service_code,
    make_transactions,
)
from ..core import DeploymentBuilder, PDAgentConfig
from ..mas import Stop
from ..simnet.shard import run_sharded

__all__ = [
    "PopulationResult",
    "ScaleSweepResult",
    "run_population",
    "run_scale_sweep",
    "DEFAULT_POPULATIONS",
    "SHARDED_POPULATIONS",
]

DEFAULT_POPULATIONS = (100, 1000, 5000)
#: The sharded axis of the sweep: (population, shard count).  Shard counts
#: track the gateway fleet (one shard per gateway region), giving near-
#: constant devices-per-shard as the population grows.
SHARDED_POPULATIONS = ((5000, 10), (20000, 40), (50000, 100))
#: One gateway per this many devices (minimum 2 — it is a *fleet*).
DEVICES_PER_GATEWAY = 500
#: Simulated seconds between consecutive device task starts.  Small enough
#: that thousands of tasks overlap, large enough to avoid a thundering herd.
ARRIVAL_SPACING_S = 0.05


@dataclass
class PopulationResult:
    """Measurements for one (population, kernel configuration) point."""

    population: int
    gateways: int
    tasks_completed: int
    events_processed: int
    sim_time_s: float
    build_wall_s: float
    run_wall_s: float
    events_per_sec: float
    wall_per_task_s: float
    peak_rss_mb: float
    #: 0 = classic single-heap kernel; K = K kernel shards.
    shards: int = 0
    #: "single" | "sharded" (exact in-process merge) | "sharded-mp"
    #: (region-partitioned multiprocessing executor).
    mode: str = "single"
    #: The headline scaling metric: aggregate events/sec divided by the
    #: shard count (1 for the single-heap kernel).
    events_per_sec_per_shard: float = 0.0
    #: Events routed through the cross-shard exchange (0 when single).
    cross_shard_events: int = 0

    def __post_init__(self) -> None:
        if not self.events_per_sec_per_shard:
            self.events_per_sec_per_shard = self.events_per_sec / max(
                self.shards, 1
            )

    def render(self) -> str:
        kernel = f"{self.shards} shards" if self.shards else "single"
        return (
            f"{self.population:>6} devices  {self.gateways:>3} gw  "
            f"{kernel:>10}  "
            f"{self.events_processed:>9} events  "
            f"{self.events_per_sec:>9.0f} ev/s  "
            f"{self.events_per_sec_per_shard:>8.0f} ev/s/shard  "
            f"{self.wall_per_task_s * 1e3:>8.2f} ms/task  "
            f"{self.peak_rss_mb:>7.1f} MB RSS"
        )


@dataclass
class ScaleSweepResult:
    """The full sweep, JSON-serialisable for ``BENCH_scale.json``."""

    seed: int
    populations: list[PopulationResult] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "bench": "scale",
            "seed": self.seed,
            "populations": [asdict(r) for r in self.populations],
        }

    def render(self) -> str:
        lines = ["Population scale sweep", "=" * 78]
        lines += [r.render() for r in self.populations]
        return "\n".join(lines)


def _maxrss_bytes(platform: Optional[str] = None) -> int:
    """Process peak RSS in *bytes* (0 where the resource module is absent).

    ``getrusage().ru_maxrss`` is kibibytes on Linux (and other classic
    Unices) but **bytes** on macOS — normalise here, in one audited place,
    so every consumer works in bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if (platform or sys.platform) == "darwin":  # pragma: no cover - macOS
        return int(raw)
    return int(raw) * 1024


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB."""
    return _maxrss_bytes() / (1024.0 * 1024.0)


def _device_shard(i: int, n_gateways: int, shards: int) -> int:
    """Home cell policy: a device shares its assigned gateway's shard."""
    return (i % n_gateways) % shards


def run_population(
    n_devices: int,
    seed: int = 0,
    n_gateways: Optional[int] = None,
    config: Optional[PDAgentConfig] = None,
    transactions_per_task: int = 1,
    shards: int = 0,
    executor: str = "inline",
) -> PopulationResult:
    """Build and run one population; returns its measurements.

    Every device subscribes, deploys one e-banking agent to its assigned
    gateway (round-robin over the fleet — the balanced-fleet model; the
    nearest-RTT policy is exercised by the selection benches), waits for
    completion, and downloads the result.

    ``shards`` > 0 runs the same workload on the sharded kernel (devices
    homed with their gateway's region).  ``executor`` selects how shards
    execute: ``"inline"`` — one :class:`~repro.simnet.ShardedSimulator`
    with an exact merge (byte-identical timeline to the single-heap run);
    ``"serial"`` / ``"process"`` — region-partitioned sub-simulations run
    in-process or on a ``multiprocessing`` pool, with per-region ordered
    result batches merged deterministically.
    """
    if n_gateways is None:
        n_gateways = max(2, n_devices // DEVICES_PER_GATEWAY)
    if shards and executor in ("serial", "process"):
        return _run_population_regions(
            n_devices, seed, n_gateways, config, transactions_per_task,
            shards, executor,
        )
    if executor != "inline":
        raise ValueError(f"unknown executor {executor!r}")
    sharded = shards > 0
    t_build = time.perf_counter()
    builder = DeploymentBuilder(
        master_seed=seed, config=config, shards=shards if sharded else None
    )
    builder.add_central("central")
    for g in range(n_gateways):
        builder.add_gateway(f"gw-{g}")
    builder.add_site("bank-a", services=[BankServiceAgent(bank_name="bank-a")])
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    for i in range(n_devices):
        builder.add_device(
            f"dev-{i}",
            wireless="WLAN",
            shard=_device_shard(i, n_gateways, shards) if sharded else None,
        )
    deployment = builder.build()
    build_wall = time.perf_counter() - t_build

    sim = deployment.sim
    txns = make_transactions(["bank-a"], transactions_per_task)
    stops = [Stop("bank-a", task="banking")]
    completed = 0

    def one_task(i: int) -> Generator:
        nonlocal completed
        platform = deployment.platform(f"dev-{i}")
        gateway = f"gw-{i % n_gateways}"
        yield sim.timeout(i * ARRIVAL_SPACING_S)
        yield from platform.subscribe("ebanking", gateway=gateway)
        handle = yield from platform.deploy(
            "ebanking", {"transactions": txns}, stops=stops, gateway=gateway
        )
        yield deployment.gateway(handle.gateway).ticket(handle.ticket).completed
        yield from platform.collect(handle)
        completed += 1

    for i in range(n_devices):
        name = f"scale-task-{i}"
        if sharded:
            sim.process(
                one_task(i), name=name,
                shard=_device_shard(i, n_gateways, shards),
            )
        else:
            sim.process(one_task(i), name=name)

    t_run = time.perf_counter()
    sim.run()
    run_wall = time.perf_counter() - t_run

    if completed != n_devices:
        raise RuntimeError(
            f"population {n_devices}: only {completed} tasks completed"
        )
    return PopulationResult(
        population=n_devices,
        gateways=n_gateways,
        shards=shards,
        mode="sharded" if sharded else "single",
        tasks_completed=completed,
        events_processed=sim.events_processed,
        sim_time_s=sim.now,
        build_wall_s=build_wall,
        run_wall_s=run_wall,
        events_per_sec=sim.events_processed / run_wall if run_wall > 0 else 0.0,
        wall_per_task_s=run_wall / completed,
        peak_rss_mb=_peak_rss_mb(),
        cross_shard_events=getattr(sim, "cross_shard_exchanged", 0),
    )


def _run_region(
    region: int,
    shards: int,
    n_devices: int,
    n_gateways: int,
    seed: int,
    config: Optional[PDAgentConfig],
    transactions_per_task: int,
) -> dict[str, Any]:
    """One gateway region as an independent sub-simulation (pool worker).

    The region gets its own central/bank replicas (the shared-nothing
    deployment model) plus the gateways and devices homed in it, keeping
    global node names and the *global* arrival stagger so the returned
    completion batch ``[(sim_time, device_index), ...]`` is already in
    global timeline order.  The worker is a pure function of its arguments
    — identical output whichever executor runs it.
    """
    builder = DeploymentBuilder(master_seed=seed, config=config)
    builder.add_central("central")
    gateways = [g for g in range(n_gateways) if g % shards == region]
    for g in gateways:
        builder.add_gateway(f"gw-{g}")
    builder.add_site("bank-a", services=[BankServiceAgent(bank_name="bank-a")])
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    devices = [
        i for i in range(n_devices)
        if _device_shard(i, n_gateways, shards) == region
    ]
    for i in devices:
        builder.add_device(f"dev-{i}", wireless="WLAN")
    deployment = builder.build()
    sim = deployment.sim
    txns = make_transactions(["bank-a"], transactions_per_task)
    stops = [Stop("bank-a", task="banking")]
    completions: list[tuple[float, int]] = []

    def one_task(i: int) -> Generator:
        platform = deployment.platform(f"dev-{i}")
        gateway = f"gw-{i % n_gateways}"
        yield sim.timeout(i * ARRIVAL_SPACING_S)
        yield from platform.subscribe("ebanking", gateway=gateway)
        handle = yield from platform.deploy(
            "ebanking", {"transactions": txns}, stops=stops, gateway=gateway
        )
        yield deployment.gateway(handle.gateway).ticket(handle.ticket).completed
        yield from platform.collect(handle)
        completions.append((sim.now, i))

    for i in devices:
        sim.process(one_task(i), name=f"scale-task-{i}")
    sim.run()
    if len(completions) != len(devices):
        raise RuntimeError(
            f"region {region}: only {len(completions)}/{len(devices)} "
            "tasks completed"
        )
    return {
        "region": region,
        "events": sim.events_processed,
        "sim_time": sim.now,
        "completions": sorted(completions),
    }


def _run_population_regions(
    n_devices: int,
    seed: int,
    n_gateways: int,
    config: Optional[PDAgentConfig],
    transactions_per_task: int,
    shards: int,
    executor: str,
) -> PopulationResult:
    """Region-partitioned executor: K independent sub-simulations whose
    ordered completion batches are merged deterministically.

    Unlike the inline sharded kernel this is *not* timeline-identical to
    the single-heap run (each region replicates the shared infrastructure),
    but it is executor-invariant: the serial and process executors produce
    identical merged batches, events, and sim times for the same arguments.
    """
    t_run = time.perf_counter()
    calls = [
        (
            _run_region,
            (region, shards, n_devices, n_gateways, seed, config,
             transactions_per_task),
        )
        for region in range(shards)
    ]
    batches = run_sharded(
        calls, processes=shards if executor == "process" else 0
    )
    run_wall = time.perf_counter() - t_run
    merged = list(heapq.merge(*(batch["completions"] for batch in batches)))
    completed = len(merged)
    if completed != n_devices:
        raise RuntimeError(
            f"population {n_devices}: only {completed} tasks completed"
        )
    events = sum(batch["events"] for batch in batches)
    return PopulationResult(
        population=n_devices,
        gateways=n_gateways,
        shards=shards,
        mode="sharded-mp" if executor == "process" else "sharded-serial",
        tasks_completed=completed,
        events_processed=events,
        sim_time_s=max(batch["sim_time"] for batch in batches),
        build_wall_s=0.0,
        run_wall_s=run_wall,
        events_per_sec=events / run_wall if run_wall > 0 else 0.0,
        wall_per_task_s=run_wall / completed,
        peak_rss_mb=_peak_rss_mb(),
    )


def run_scale_sweep(
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    seed: int = 0,
    config: Optional[PDAgentConfig] = None,
    shards: int = 0,
    executor: str = "inline",
    sharded_populations: tuple[tuple[int, int], ...] = (),
) -> ScaleSweepResult:
    """Run the device-population sweep at each size in ``populations``.

    With ``shards`` set, every population runs sharded at that count.
    ``sharded_populations`` appends explicit (population, shards) rows —
    the 20k/50k axis of ``BENCH_scale.json``.
    """
    result = ScaleSweepResult(seed=seed)
    for population in populations:
        result.populations.append(
            run_population(
                population, seed=seed, config=config, shards=shards,
                executor=executor,
            )
        )
    for population, n_shards in sharded_populations:
        result.populations.append(
            run_population(
                population, seed=seed, config=config, shards=n_shards,
                executor=executor,
            )
        )
    return result


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--populations",
        type=int,
        nargs="+",
        default=list(DEFAULT_POPULATIONS),
        help="device counts to sweep (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run every population on a sharded kernel with N shards",
    )
    parser.add_argument(
        "--executor",
        choices=("inline", "serial", "process"),
        default="inline",
        help="sharded executor: inline exact merge, or region-partitioned "
        "serial/multiprocessing sub-simulations",
    )
    parser.add_argument(
        "--sharded-axis",
        action="store_true",
        help="append the large sharded rows "
        + ", ".join(f"{n}@{k}sh" for n, k in SHARDED_POPULATIONS),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the sweep result as JSON (e.g. BENCH_scale.json)",
    )
    args = parser.parse_args(argv)
    result = run_scale_sweep(
        tuple(args.populations),
        seed=args.seed,
        shards=args.shards,
        executor=args.executor,
        sharded_populations=SHARDED_POPULATIONS if args.sharded_axis else (),
    )
    print(result.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
