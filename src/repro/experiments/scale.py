"""Population-scale harness: N devices through a gateway fleet.

The paper's evaluation (§4) runs one PDA; the ROADMAP north star is a
platform that "serves millions of users".  This harness measures the
*simulator's* capacity to get there: a population sweep (100 → 5,000
devices, each running one full e-banking task through a shared gateway
fleet) reporting

* **kernel events/sec** — raw discrete-event throughput,
* **wall-clock per simulated task** — how expensive one user task is to
  simulate,
* **peak RSS** — memory high-water mark,

so performance regressions in any hot path (kernel, transport, codec,
crypto, telemetry) show up as a number, not an anecdote.  Results are
written as ``BENCH_scale.json`` — the bench trajectory's perf baseline,
which CI compares against (see ``benchmarks/bench_scale.py``).

Determinism: the sweep is seeded like every other experiment; for a fixed
(seed, population) the simulated timeline — ``events_processed``, task
completions, every connection record — is bit-reproducible.  Only the
wall-clock/RSS measurements vary run to run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Generator, Optional

from ..apps.ebanking import (
    BankServiceAgent,
    EBankingAgent,
    ebanking_service_code,
    make_transactions,
)
from ..core import DeploymentBuilder, PDAgentConfig
from ..mas import Stop

__all__ = [
    "PopulationResult",
    "ScaleSweepResult",
    "run_population",
    "run_scale_sweep",
    "DEFAULT_POPULATIONS",
]

DEFAULT_POPULATIONS = (100, 1000, 5000)
#: One gateway per this many devices (minimum 2 — it is a *fleet*).
DEVICES_PER_GATEWAY = 500
#: Simulated seconds between consecutive device task starts.  Small enough
#: that thousands of tasks overlap, large enough to avoid a thundering herd.
ARRIVAL_SPACING_S = 0.05


@dataclass
class PopulationResult:
    """Measurements for one population size."""

    population: int
    gateways: int
    tasks_completed: int
    events_processed: int
    sim_time_s: float
    build_wall_s: float
    run_wall_s: float
    events_per_sec: float
    wall_per_task_s: float
    peak_rss_mb: float

    def render(self) -> str:
        return (
            f"{self.population:>6} devices  {self.gateways:>3} gw  "
            f"{self.events_processed:>9} events  "
            f"{self.events_per_sec:>10.0f} ev/s  "
            f"{self.wall_per_task_s * 1e3:>8.2f} ms/task  "
            f"{self.peak_rss_mb:>7.1f} MB RSS"
        )


@dataclass
class ScaleSweepResult:
    """The full sweep, JSON-serialisable for ``BENCH_scale.json``."""

    seed: int
    populations: list[PopulationResult] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "bench": "scale",
            "seed": self.seed,
            "populations": [asdict(r) for r in self.populations],
        }

    def render(self) -> str:
        lines = ["Population scale sweep", "=" * 78]
        lines += [r.render() for r in self.populations]
        return "\n".join(lines)


def _peak_rss_mb() -> float:
    """Process peak RSS in MB (0.0 where the resource module is absent)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0.0
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        rss_kb /= 1024.0
    return rss_kb / 1024.0


def run_population(
    n_devices: int,
    seed: int = 0,
    n_gateways: Optional[int] = None,
    config: Optional[PDAgentConfig] = None,
    transactions_per_task: int = 1,
) -> PopulationResult:
    """Build and run one population; returns its measurements.

    Every device subscribes, deploys one e-banking agent to its assigned
    gateway (round-robin over the fleet — the balanced-fleet model; the
    nearest-RTT policy is exercised by the selection benches), waits for
    completion, and downloads the result.
    """
    if n_gateways is None:
        n_gateways = max(2, n_devices // DEVICES_PER_GATEWAY)
    t_build = time.perf_counter()
    builder = DeploymentBuilder(master_seed=seed, config=config)
    builder.add_central("central")
    for g in range(n_gateways):
        builder.add_gateway(f"gw-{g}")
    builder.add_site("bank-a", services=[BankServiceAgent(bank_name="bank-a")])
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    for i in range(n_devices):
        builder.add_device(f"dev-{i}", wireless="WLAN")
    deployment = builder.build()
    build_wall = time.perf_counter() - t_build

    sim = deployment.sim
    txns = make_transactions(["bank-a"], transactions_per_task)
    stops = [Stop("bank-a", task="banking")]
    completed = 0

    def one_task(i: int) -> Generator:
        nonlocal completed
        platform = deployment.platform(f"dev-{i}")
        gateway = f"gw-{i % n_gateways}"
        yield sim.timeout(i * ARRIVAL_SPACING_S)
        yield from platform.subscribe("ebanking", gateway=gateway)
        handle = yield from platform.deploy(
            "ebanking", {"transactions": txns}, stops=stops, gateway=gateway
        )
        yield deployment.gateway(handle.gateway).ticket(handle.ticket).completed
        yield from platform.collect(handle)
        completed += 1

    for i in range(n_devices):
        sim.process(one_task(i), name=f"scale-task-{i}")

    t_run = time.perf_counter()
    sim.run()
    run_wall = time.perf_counter() - t_run

    if completed != n_devices:
        raise RuntimeError(
            f"population {n_devices}: only {completed} tasks completed"
        )
    return PopulationResult(
        population=n_devices,
        gateways=n_gateways,
        tasks_completed=completed,
        events_processed=sim.events_processed,
        sim_time_s=sim.now,
        build_wall_s=build_wall,
        run_wall_s=run_wall,
        events_per_sec=sim.events_processed / run_wall if run_wall > 0 else 0.0,
        wall_per_task_s=run_wall / completed,
        peak_rss_mb=_peak_rss_mb(),
    )


def run_scale_sweep(
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    seed: int = 0,
    config: Optional[PDAgentConfig] = None,
) -> ScaleSweepResult:
    """Run the device-population sweep at each size in ``populations``."""
    result = ScaleSweepResult(seed=seed)
    for population in populations:
        result.populations.append(run_population(population, seed=seed, config=config))
    return result


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--populations",
        type=int,
        nargs="+",
        default=list(DEFAULT_POPULATIONS),
        help="device counts to sweep (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=None,
        help="write the sweep result as JSON (e.g. BENCH_scale.json)",
    )
    args = parser.parse_args(argv)
    result = run_scale_sweep(tuple(args.populations), seed=args.seed)
    print(result.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
