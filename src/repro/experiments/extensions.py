"""Extension experiments beyond the paper's figures (E1–E5).

The paper *argues* three further points without measuring them; these
harnesses quantify each on the same simulated environment:

* **E1 — device resource usage** ("PDAgent also reduces the use of
  resources within wireless devices"): per-approach device energy split
  into radio-tx/rx, CPU, and connection-airtime components.
* **E2 — wireless technology sweep**: how the PDAgent advantage changes
  from GPRS-class to WLAN-class links.  The advantage is *structural*
  (constant connection count vs per-transaction round trips), so it persists
  — and in ratio terms even grows — on faster links, where the baselines'
  chattiness rather than raw bandwidth dominates.
* **E3 — bank-count sweep**: PDAgent's device-side cost stays flat as the
  agent's tour grows; the wired-side travel time absorbs the growth.
* **E4 — client-agent-server comparison**: §2's middle-tier model matches
  PDAgent's flat connection profile (both submit-and-disconnect), so the
  figures' distinction is *flexibility*, not connection time — quantified
  here so the related-work claim is measured, not asserted.
* **E5 — device hardware class sweep**: packing CPU scales with the
  hardware class, completion time stays wireless-dominated — "being
  lightweight" (§3) quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scenario import build_scenario, run_pdagent_batch

__all__ = [
    "EnergyRow",
    "WirelessRow",
    "BankSweepRow",
    "CasRow",
    "DeviceClassRow",
    "run_energy_comparison",
    "run_wireless_sweep",
    "run_bank_sweep",
    "run_cas_comparison",
    "run_device_class_sweep",
    "main",
]

_N_TXNS = 8


@dataclass
class EnergyRow:
    """Device-side resource expenditure for one approach's batch."""

    approach: str
    tx_bytes: int
    rx_bytes: int
    cpu_seconds: float
    connection_seconds: float
    total_energy: float


def run_energy_comparison(seed: int = 17, n_txns: int = _N_TXNS) -> list[EnergyRow]:
    """E1: the same batch, measured in device energy units."""
    rows = []

    def window(scenario, run):
        """Run the batch and return the energy spent *inside* it (the
        tx/rx/connection components are windowed by ``since``; CPU is
        windowed by delta, excluding pre-warm packing)."""
        device = scenario.pda
        t0 = scenario.sim.now
        cpu0 = device.energy.cpu_seconds
        total0 = device.energy.total
        run()
        device.settle_energy(since=t0)
        return EnergyRow(
            approach="",
            tx_bytes=device.energy.tx_bytes,
            rx_bytes=device.energy.rx_bytes,
            cpu_seconds=device.energy.cpu_seconds - cpu0,
            connection_seconds=device.energy.connection_seconds,
            total_energy=device.energy.total - total0,
        )

    # --- PDAgent ------------------------------------------------------------
    scenario = build_scenario(seed=seed)
    row = window(scenario, lambda: run_pdagent_batch(scenario, n_txns))
    row.approach = "pdagent"
    rows.append(row)

    # --- client-server --------------------------------------------------------
    scenario = build_scenario(seed=seed)

    def run_cs():
        runner = scenario.client_server_runner()
        proc = scenario.sim.process(runner.run(scenario.transactions(n_txns)))
        scenario.sim.run(until=proc)

    row = window(scenario, run_cs)
    row.approach = "client-server"
    rows.append(row)
    return rows


@dataclass
class WirelessRow:
    """PDAgent vs client-server on one wireless technology."""

    technology: str
    pdagent_conn_time: float
    client_server_conn_time: float

    @property
    def advantage(self) -> float:
        return self.client_server_conn_time / max(self.pdagent_conn_time, 1e-9)


def run_wireless_sweep(
    seed: int = 18, n_txns: int = _N_TXNS, technologies: tuple[str, ...] = ("GPRS", "WLAN")
) -> list[WirelessRow]:
    """E2: the connection-time gap across wireless generations."""
    rows = []
    for tech in technologies:
        scenario = build_scenario(seed=seed, wireless=tech)
        metrics = run_pdagent_batch(scenario, n_txns)

        scenario = build_scenario(seed=seed, wireless=tech)
        runner = scenario.client_server_runner()
        proc = scenario.sim.process(runner.run(scenario.transactions(n_txns)))
        cs = scenario.sim.run(until=proc)
        rows.append(
            WirelessRow(
                technology=tech,
                pdagent_conn_time=metrics.connection_time,
                client_server_conn_time=cs.connection_time,
            )
        )
    return rows


@dataclass
class BankSweepRow:
    """PDAgent metrics as the agent's tour grows."""

    n_banks: int
    connection_time: float
    completion_time: float
    elapsed_total: float  # includes the agent's wired travel


def run_bank_sweep(
    seed: int = 19, n_txns: int = 12, bank_counts: tuple[int, ...] = (1, 2, 4, 6)
) -> list[BankSweepRow]:
    """E3: device cost vs tour length at a fixed transaction count."""
    rows = []
    for n_banks in bank_counts:
        banks = tuple(f"bank-{chr(ord('a') + i)}" for i in range(n_banks))
        scenario = build_scenario(seed=seed, banks=banks)
        metrics = run_pdagent_batch(scenario, n_txns)
        rows.append(
            BankSweepRow(
                n_banks=n_banks,
                connection_time=metrics.connection_time,
                completion_time=metrics.completion_time,
                elapsed_total=metrics.elapsed_total,
            )
        )
    return rows


@dataclass
class DeviceClassRow:
    """PDAgent costs on one hardware class."""

    profile: str
    completion_time: float
    pack_cpu_seconds: float


def run_device_class_sweep(
    seed: int = 21,
    n_txns: int = _N_TXNS,
    profiles: tuple[str, ...] = ("PHONE", "PDA", "DESKTOP"),
) -> list[DeviceClassRow]:
    """E5: the same batch on different device hardware classes.

    Slower CPUs pay more for the on-device packing (XML + compress +
    encrypt), but the completion time stays wireless-dominated — the
    platform remains practical even on the weakest MIDP phones, the
    paper's "being lightweight" design issue.
    """
    rows = []
    for profile in profiles:
        scenario = build_scenario(seed=seed, device_profile=profile)
        cpu0 = scenario.pda.energy.cpu_seconds
        metrics = run_pdagent_batch(scenario, n_txns)
        rows.append(
            DeviceClassRow(
                profile=profile,
                completion_time=metrics.completion_time,
                pack_cpu_seconds=scenario.pda.energy.cpu_seconds - cpu0,
            )
        )
    return rows


@dataclass
class CasRow:
    """PDAgent vs client-agent-server connection time at one batch size."""

    n_transactions: int
    pdagent_conn_time: float
    cas_conn_time: float


def run_cas_comparison(
    seed: int = 20, ns: tuple[int, ...] = (1, 4, 8)
) -> list[CasRow]:
    """E4: both disconnected models have flat, similar connection profiles."""
    rows = []
    for n in ns:
        scenario = build_scenario(seed=seed)
        metrics = run_pdagent_batch(scenario, n)

        scenario = build_scenario(seed=seed, with_agent_server=True)
        runner = scenario.client_agent_server_runner()

        def flow():
            ticket = yield from runner.submit(
                "ebanking", {"transactions": scenario.transactions(n)}
            )
            yield scenario.agent_server.completion_of(ticket)
            t0 = scenario.sim.now
            data = yield from runner.collect(ticket)
            return ticket

        tracer = scenario.network.tracer
        t_start = scenario.sim.now
        proc = scenario.sim.process(flow())
        scenario.sim.run(until=proc)
        cas_conn = tracer.connection_time("pda", since=t_start)
        rows.append(
            CasRow(
                n_transactions=n,
                pdagent_conn_time=metrics.connection_time,
                cas_conn_time=cas_conn,
            )
        )
    return rows


def main() -> None:
    from .report import format_table

    energy = run_energy_comparison()
    print(
        format_table(
            ["approach", "tx B", "rx B", "cpu (s)", "conn (s)", "energy"],
            [
                [r.approach, r.tx_bytes, r.rx_bytes, r.cpu_seconds,
                 r.connection_seconds, r.total_energy]
                for r in energy
            ],
            title="Extension E1: device resource usage (8-transaction batch)",
        )
    )
    print()
    wireless = run_wireless_sweep()
    print(
        format_table(
            ["technology", "PDAgent conn (s)", "client-server conn (s)", "advantage"],
            [
                [r.technology, r.pdagent_conn_time, r.client_server_conn_time,
                 f"{r.advantage:.1f}x"]
                for r in wireless
            ],
            title="Extension E2: wireless technology sweep",
        )
    )
    print()
    banks = run_bank_sweep()
    print(
        format_table(
            ["#banks", "conn time (s)", "completion (s)", "elapsed incl. travel (s)"],
            [
                [r.n_banks, r.connection_time, r.completion_time, r.elapsed_total]
                for r in banks
            ],
            title="Extension E3: tour length sweep (12 transactions)",
        )
    )
    print()
    cas = run_cas_comparison()
    print(
        format_table(
            ["#txns", "PDAgent conn (s)", "client-agent-server conn (s)"],
            [[r.n_transactions, r.pdagent_conn_time, r.cas_conn_time] for r in cas],
            title="Extension E4: both disconnected models stay flat",
        )
    )
    print()
    classes = run_device_class_sweep()
    print(
        format_table(
            ["device class", "completion (s)", "pack CPU (s)"],
            [[r.profile, r.completion_time, r.pack_cpu_seconds] for r in classes],
            title="Extension E5: device hardware class sweep (8 transactions)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
