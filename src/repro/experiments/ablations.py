"""Ablations over PDAgent's design choices (A1–A4 in DESIGN.md).

* **A1 — gateway selection (§3.5)**: nearest-RTT probing vs first/random
  selection on a topology with heterogeneous gateway distances.
* **A2 — PI compression**: codec choice (lzss / huffman / null) vs PI wire
  size and upload time.
* **A3 — security (§3.4)**: encryption on/off vs PI size and device CPU.
* **A4 — MAS portability**: Aglets-style vs Voyager-style wire formats for
  the *same* e-banking run (the "any MA system" claim: results identical,
  only transfer bytes/time differ).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import PDAgentConfig
from .report import format_table
from .scenario import build_scenario, run_pdagent_batch

__all__ = [
    "SelectionRow",
    "CodecRow",
    "SecurityRow",
    "AdapterRow",
    "run_selection_ablation",
    "run_codec_ablation",
    "run_security_ablation",
    "run_adapter_ablation",
    "main",
]

_N_TXNS = 5


@dataclass
class SelectionRow:
    policy: str
    completion_time: float
    chosen_gateway: str
    probes_sent: int


def run_selection_ablation(seed: int = 7, n_gateways: int = 4) -> list[SelectionRow]:
    """A1: same multi-gateway topology, different selection policies.

    Gateways are placed at increasing distances by scaling their uplink
    latency, so "nearest" has something real to find.
    """
    rows = []
    for policy in ("nearest", "first", "random", "round_robin"):
        config = PDAgentConfig(selection_policy=policy)
        scenario = build_scenario(seed=seed, config=config, n_gateways=n_gateways)
        # Stretch gateway uplinks: gw-(k-1) near … gw-0 far.  "first" always
        # picks gw-0, which we make the *slowest*, to expose naive policies
        # (the device cannot know that list order equals distance).  The
        # latency spread (0.25 s per rank) dominates wireless jitter so one
        # probe per gateway reliably ranks them, as the paper assumes.
        from dataclasses import replace

        net = scenario.network
        for i in range(n_gateways):
            rank = n_gateways - i  # gw-0 gets the largest latency
            for src, dst in ((f"gw-{i}", "backbone"), ("backbone", f"gw-{i}")):
                link = net.link(src, dst)
                link.spec = replace(link.spec, latency=0.25 * rank, jitter=0.002)
        platform = scenario.platform
        platform.selector._probes.clear()  # re-probe under the new latencies
        metrics = run_pdagent_batch(scenario, _N_TXNS, gateway=None)
        rows.append(
            SelectionRow(
                policy=policy,
                completion_time=metrics.completion_time,
                chosen_gateway=metrics.gateway,
                probes_sent=platform.selector.probes_sent,
            )
        )
    return rows


@dataclass
class CodecRow:
    codec: str
    pi_wire_bytes: int
    upload_time: float
    completion_time: float


def run_codec_ablation(seed: int = 7, n_txns: int = 8) -> list[CodecRow]:
    """A2: compression codec vs PI size and upload time."""
    rows = []
    for codec in ("lzss", "huffman", "null"):
        config = PDAgentConfig(codec=codec)
        scenario = build_scenario(seed=seed, config=config)
        metrics = run_pdagent_batch(scenario, n_txns)
        rows.append(
            CodecRow(
                codec=codec,
                pi_wire_bytes=metrics.pi_wire_bytes,
                upload_time=metrics.upload_time,
                completion_time=metrics.completion_time,
            )
        )
    return rows


@dataclass
class SecurityRow:
    encrypted: bool
    pi_wire_bytes: int
    completion_time: float
    device_cpu_seconds: float


def run_security_ablation(seed: int = 7, n_txns: int = 8) -> list[SecurityRow]:
    """A3: §3.4 encryption on/off."""
    rows = []
    for encrypted in (True, False):
        config = PDAgentConfig(encrypt=encrypted)
        scenario = build_scenario(seed=seed, config=config)
        cpu_before = scenario.pda.energy.cpu_seconds
        metrics = run_pdagent_batch(scenario, n_txns)
        rows.append(
            SecurityRow(
                encrypted=encrypted,
                pi_wire_bytes=metrics.pi_wire_bytes,
                completion_time=metrics.completion_time,
                device_cpu_seconds=scenario.pda.energy.cpu_seconds - cpu_before,
            )
        )
    return rows


@dataclass
class AdapterRow:
    flavour: str
    completion_time: float
    elapsed_total: float
    agent_hops: int
    txn_count: int


def run_adapter_ablation(seed: int = 7, n_txns: int = 6) -> list[AdapterRow]:
    """A4: the same workload over two MAS wire-format flavours."""
    rows = []
    for flavour in ("aglets", "voyager"):
        scenario = build_scenario(seed=seed, mas_flavour=flavour)
        metrics = run_pdagent_batch(scenario, n_txns)
        rows.append(
            AdapterRow(
                flavour=flavour,
                completion_time=metrics.completion_time,
                elapsed_total=metrics.elapsed_total,
                agent_hops=scenario.network.tracer.counters.get("agent_hops", 0),
                txn_count=len(metrics.result.data["transactions"]),
            )
        )
    return rows


def main() -> None:
    sel = run_selection_ablation()
    print(
        format_table(
            ["policy", "completion (s)", "chosen", "probes"],
            [[r.policy, r.completion_time, r.chosen_gateway, r.probes_sent] for r in sel],
            title="Ablation A1: gateway selection policy (gw-3 is nearest)",
        )
    )
    print()
    codec = run_codec_ablation()
    print(
        format_table(
            ["codec", "PI wire B", "upload (s)", "completion (s)"],
            [[r.codec, r.pi_wire_bytes, r.upload_time, r.completion_time] for r in codec],
            title="Ablation A2: PI compression codec",
        )
    )
    print()
    sec = run_security_ablation()
    print(
        format_table(
            ["encrypt", "PI wire B", "completion (s)", "device CPU (s)"],
            [[r.encrypted, r.pi_wire_bytes, r.completion_time, r.device_cpu_seconds] for r in sec],
            title="Ablation A3: security on/off",
        )
    )
    print()
    ad = run_adapter_ablation()
    print(
        format_table(
            ["MAS flavour", "completion (s)", "elapsed (s)", "hops", "txns ok"],
            [[r.flavour, r.completion_time, r.elapsed_total, r.agent_hops, r.txn_count] for r in ad],
            title="Ablation A4: MAS wire-format portability",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
