"""Experiment harness: regenerates every figure and claim of the paper.

* :mod:`~repro.experiments.scenario` — the §4 evaluation environment;
* :mod:`~repro.experiments.fig12` — internet connection time, 3 approaches;
* :mod:`~repro.experiments.fig13` — completion times over 4 trials;
* :mod:`~repro.experiments.claims` — code-size (C1) and footprint (C2);
* :mod:`~repro.experiments.ablations` — selection / codec / security /
  adapter ablations (A1–A4);
* :mod:`~repro.experiments.faults` — the Fig. 12 workload under an
  injected fault schedule (completion rate, added connection time);
* :mod:`~repro.experiments.overload` — dispatch storms through one
  under-provisioned gateway, protected (admission + dedup) vs not;
* :mod:`~repro.experiments.diversity` — a diurnal + flash-crowd day at
  1000+ devices over a three-gateway fleet, full application mix;
* :mod:`~repro.experiments.runner` — the ``pdagent-experiments`` CLI.
"""

from .stats import flatness, growth_ratio, linear_fit, mean_ci
from .sweep import SweepCell, SweepGrid, sweep
from .faults import (
    FaultComparison,
    FaultRunResult,
    reference_schedule,
    run_client_server_under_faults,
    run_fault_comparison,
    run_pdagent_under_faults,
)
from .diversity import (
    ClassStats,
    DiversityResult,
    diversity_config,
    run_diversity,
)
from .overload import (
    OverloadRunResult,
    OverloadSweepResult,
    overload_schedule,
    run_overload,
    run_overload_sweep,
)
from .scenario import (
    EvaluationScenario,
    PDAgentRunMetrics,
    build_scenario,
    run_pdagent_batch,
)

__all__ = [
    "linear_fit",
    "flatness",
    "mean_ci",
    "growth_ratio",
    "sweep",
    "SweepGrid",
    "SweepCell",
    "EvaluationScenario",
    "PDAgentRunMetrics",
    "build_scenario",
    "run_pdagent_batch",
    "FaultRunResult",
    "FaultComparison",
    "reference_schedule",
    "run_pdagent_under_faults",
    "run_client_server_under_faults",
    "run_fault_comparison",
    "OverloadRunResult",
    "OverloadSweepResult",
    "overload_schedule",
    "run_overload",
    "run_overload_sweep",
    "ClassStats",
    "DiversityResult",
    "diversity_config",
    "run_diversity",
]
