"""Generic parameter sweeps over the evaluation scenario.

The figure harnesses sweep one knob each; :func:`sweep` generalises that
for exploratory use: a grid of (config fields × scenario fields × batch
sizes), one fresh seeded scenario per cell, one
:class:`~repro.experiments.scenario.PDAgentRunMetrics` per cell.

>>> grid = sweep(
...     config_axes={"codec": ["lzss", "null"]},
...     scenario_axes={"wireless": ["GPRS", "WLAN"]},
...     ns=(4,),
... )                                                     # doctest: +SKIP
>>> table = grid.table(metric="completion_time")          # doctest: +SKIP

The result grid renders to a flat table (one row per cell) or to CSV, so a
user can study interactions (e.g. "is compression still worth it on WLAN?")
without writing harness code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from .report import format_table, to_csv
from .scenario import PDAgentRunMetrics, build_scenario, run_pdagent_batch
from ..core import PDAgentConfig

__all__ = ["SweepCell", "SweepGrid", "sweep"]

#: Metrics a sweep table may select (attribute names on PDAgentRunMetrics).
_METRICS = (
    "completion_time",
    "connection_time",
    "upload_time",
    "download_time",
    "elapsed_total",
    "pi_wire_bytes",
    "connections",
)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: the swept values plus its measured metrics."""

    config_values: dict[str, Any]
    scenario_values: dict[str, Any]
    n_transactions: int
    metrics: PDAgentRunMetrics

    def value(self, metric: str) -> Any:
        if metric == "completion_time":
            return self.metrics.completion_time
        if metric not in _METRICS:
            raise KeyError(f"unknown metric {metric!r}; have {_METRICS}")
        return getattr(self.metrics, metric)


@dataclass
class SweepGrid:
    """All cells of one sweep, with table/CSV rendering."""

    config_axes: dict[str, Sequence[Any]]
    scenario_axes: dict[str, Sequence[Any]]
    ns: tuple[int, ...]
    cells: list[SweepCell] = field(default_factory=list)

    @property
    def axis_names(self) -> list[str]:
        return list(self.config_axes) + list(self.scenario_axes) + ["n_txns"]

    def _rows(self, metric: str) -> list[list[Any]]:
        rows = []
        for cell in self.cells:
            row = (
                [cell.config_values[k] for k in self.config_axes]
                + [cell.scenario_values[k] for k in self.scenario_axes]
                + [cell.n_transactions, cell.value(metric)]
            )
            rows.append(row)
        return rows

    def table(self, metric: str = "completion_time", title: str = "") -> str:
        """Fixed-width table, one row per cell."""
        return format_table(
            self.axis_names + [metric],
            self._rows(metric),
            title=title or f"sweep: {metric}",
        )

    def csv(self, metric: str = "completion_time") -> str:
        return to_csv(self.axis_names + [metric], self._rows(metric))

    def best(self, metric: str = "completion_time") -> SweepCell:
        """The cell minimising ``metric``."""
        if not self.cells:
            raise ValueError("empty sweep")
        return min(self.cells, key=lambda c: c.value(metric))


def sweep(
    config_axes: dict[str, Sequence[Any]] | None = None,
    scenario_axes: dict[str, Sequence[Any]] | None = None,
    ns: tuple[int, ...] = (5,),
    seed: int = 0,
    base_config: PDAgentConfig | None = None,
) -> SweepGrid:
    """Run the full cartesian grid; returns the populated :class:`SweepGrid`.

    ``config_axes`` keys are :class:`~repro.core.PDAgentConfig` fields
    (``codec``, ``encrypt``, …); ``scenario_axes`` keys are
    :func:`~repro.experiments.scenario.build_scenario` keyword arguments
    (``wireless``, ``mas_flavour``, ``device_profile``, ``banks``, …).
    Every cell runs in a fresh scenario with the same master ``seed``, so
    cells differ only by the swept values.
    """
    config_axes = dict(config_axes or {})
    scenario_axes = dict(scenario_axes or {})
    base = base_config or PDAgentConfig()
    grid = SweepGrid(config_axes=config_axes, scenario_axes=scenario_axes, ns=tuple(ns))

    config_keys = list(config_axes)
    scenario_keys = list(scenario_axes)
    config_space = list(itertools.product(*(config_axes[k] for k in config_keys))) or [()]
    scenario_space = list(
        itertools.product(*(scenario_axes[k] for k in scenario_keys))
    ) or [()]

    for config_combo in config_space:
        config_values = dict(zip(config_keys, config_combo))
        config = base.with_(**config_values) if config_values else base
        for scenario_combo in scenario_space:
            scenario_values = dict(zip(scenario_keys, scenario_combo))
            for n in grid.ns:
                scenario = build_scenario(seed=seed, config=config, **scenario_values)
                metrics = run_pdagent_batch(scenario, n)
                grid.cells.append(
                    SweepCell(
                        config_values=config_values,
                        scenario_values=scenario_values,
                        n_transactions=n,
                        metrics=metrics,
                    )
                )
    return grid
