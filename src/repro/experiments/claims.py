"""Quantitative in-text claims (C1, C2 in DESIGN.md).

* **C1** (§2): "for most mobile applications, the MA code is of a size
  ranging from 1KB to 8KB, and can be compressed before download" —
  measured over the three shipped applications' code artifacts and their
  travelling agent forms.
* **C2** (§4): "To store the PDAgent platform together with the kXML
  package within the wireless devices requires only 120KB storage space" —
  measured as the source footprint of the device-side modules of this
  reproduction (platform + XML codec + their direct dependencies), the
  closest analogue of the prototype's installed-bytes figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..compressor import compress
from ..core.subscription import ServiceCode, code_to_xml
from ..mas import Itinerary, MobileAgent, serialize_agent
from ..xmlcodec import write_bytes
from .report import format_table

__all__ = ["CodeSizeRow", "FootprintResult", "run_claim_code_sizes", "run_claim_footprint", "main"]

#: Device-side module set standing in for "the PDAgent platform together
#: with the kXML package" (paths relative to the repro package root).
DEVICE_SIDE_MODULES = (
    "core/platform.py",
    "core/api.py",
    "core/dispatcher.py",
    "core/netmanager.py",
    "core/selection.py",
    "core/device_db.py",
    "core/packed_info.py",
    "core/security.py",
    "core/config.py",
    "core/errors.py",
    "core/ui.py",
    "xmlcodec/dom.py",
    "xmlcodec/parser.py",
    "xmlcodec/writer.py",
    "xmlcodec/escape.py",
    "xmlcodec/errors.py",
    "compressor/api.py",
    "compressor/lzss.py",
    "compressor/huffman.py",
    "compressor/null.py",
    "compressor/bitio.py",
    "rms/record_store.py",
    "rms/listener.py",
    "rms/errors.py",
    "crypto/md5.py",
    "crypto/rsa.py",
    "crypto/envelope.py",
    "crypto/keys.py",
    "crypto/errors.py",
)


@dataclass
class CodeSizeRow:
    """Per-application code-size measurements."""

    service: str
    code_size: int
    download_doc_bytes: int
    download_compressed_bytes: int
    agent_wire_bytes: int
    agent_wire_compressed: int

    @property
    def in_band(self) -> bool:
        """Within the paper's 1–8 KB claim."""
        return 1024 <= self.code_size <= 8192


@dataclass
class FootprintResult:
    """Source footprint of the device-side platform."""

    module_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.module_bytes.values())

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


def _example_codes() -> list[ServiceCode]:
    from ..apps import (
        ebanking_service_code,
        foodsearch_service_code,
        newswire_service_code,
    )

    return [
        ebanking_service_code(),
        foodsearch_service_code(),
        newswire_service_code(),
    ]


def run_claim_code_sizes() -> list[CodeSizeRow]:
    """Measure C1 over the shipped applications."""
    from ..apps import EBankingAgent, FoodSearchAgent, NewswireAgent

    classes: dict[str, type[MobileAgent]] = {
        "EBankingAgent": EBankingAgent,
        "FoodSearchAgent": FoodSearchAgent,
        "NewswireAgent": NewswireAgent,
    }
    rows = []
    for code in _example_codes():
        doc = write_bytes(code_to_xml(code, "mac-claim"))
        cls = classes[code.agent_class]
        agent = cls(
            agent_id="claim/agent-1",
            owner="claim",
            home="gw-0",
            itinerary=Itinerary(origin="gw-0"),
            state={"params": {}, "results": []},
        )
        wire = serialize_agent(agent)
        rows.append(
            CodeSizeRow(
                service=code.service,
                code_size=code.code_size,
                download_doc_bytes=len(doc),
                download_compressed_bytes=len(compress(doc, "lzss")),
                agent_wire_bytes=len(wire),
                agent_wire_compressed=len(compress(wire, "lzss")),
            )
        )
    return rows


def run_claim_footprint() -> FootprintResult:
    """Measure C2: bytes of device-side source shipped to the handheld."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    result = FootprintResult()
    for rel in DEVICE_SIDE_MODULES:
        path = os.path.join(root, rel)
        result.module_bytes[rel] = os.path.getsize(path)
    return result


def main() -> tuple[list[CodeSizeRow], FootprintResult]:
    rows = run_claim_code_sizes()
    print(
        format_table(
            ["service", "code B", "doc B", "doc lzss B", "agent B", "agent lzss B", "1-8KB?"],
            [
                [
                    r.service,
                    r.code_size,
                    r.download_doc_bytes,
                    r.download_compressed_bytes,
                    r.agent_wire_bytes,
                    r.agent_wire_compressed,
                    "yes" if r.in_band else "no",
                ]
                for r in rows
            ],
            title="Claim C1: MA code sizes (paper: 1-8 KB, compressible)",
        )
    )
    footprint = run_claim_footprint()
    print()
    print(
        f"Claim C2: device-side platform footprint = {footprint.total_kb:.1f} KB "
        f"across {len(footprint.module_bytes)} modules (paper prototype: ~120 KB)"
    )
    return rows, footprint


if __name__ == "__main__":  # pragma: no cover
    main()
