"""Small statistics helpers for experiment shape assertions.

The figure benches assert *shapes* ("grows linearly", "flat", "unstable
across trials"); these helpers turn those phrases into numbers:

* :func:`linear_fit` — least-squares slope/intercept/R² (linearity);
* :func:`flatness` — max/min ratio of a series (constancy);
* :func:`mean_ci` — mean with a normal-approximation confidence interval;
* :func:`growth_ratio` — end-to-end growth of a series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "linear_fit", "flatness", "mean_ci", "growth_ratio"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares over ``(xs, ys)``.

    R² is 1.0 for a perfectly linear series; benches assert e.g.
    ``fit.r2 > 0.98 and fit.slope > 0`` for "grows roughly linearly".
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept), r2=r2)


def flatness(ys: Sequence[float]) -> float:
    """max/min ratio; 1.0 = perfectly flat.  Series must be positive."""
    if not ys:
        raise ValueError("empty series")
    lo = min(ys)
    if lo <= 0:
        raise ValueError("flatness needs positive values")
    return max(ys) / lo


def mean_ci(ys: Sequence[float], confidence: float = 0.95) -> tuple[float, float]:
    """``(mean, half_width)`` normal-approximation confidence interval."""
    if not ys:
        raise ValueError("empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(ys, dtype=float)
    mean = float(arr.mean())
    if len(arr) == 1:
        return mean, 0.0
    # z for the two-sided interval via the probit of (1+confidence)/2.
    z = math.sqrt(2.0) * _erfinv(confidence)
    half = z * float(arr.std(ddof=1)) / math.sqrt(len(arr))
    return mean, half


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, |err| < 2e-3)."""
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), x
    )


def growth_ratio(ys: Sequence[float]) -> float:
    """last/first ratio of a positive series."""
    if len(ys) < 2:
        raise ValueError("need at least two points")
    if ys[0] <= 0:
        raise ValueError("growth_ratio needs a positive first value")
    return ys[-1] / ys[0]
