"""Figure 13 — transaction completion times across four trials.

Two panels:

* **13a (client-server)**: completion time grows to ~minutes at 10
  transactions and is visibly unstable across trials — every transaction's
  round trips resample the wireless latency, so variance accumulates.
* **13b (PDAgent)**: completion time (= PI upload + result download, the
  paper's definition) stays within a few seconds for any batch size and is
  nearly identical across trials.

A "trial" is a distinct master seed: same topology and workload, different
latency-jitter draws — precisely what re-running the physical experiment
four times did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..telemetry.exporters import TraceCollector
from .report import format_series, format_table
from .scenario import build_scenario, run_pdagent_batch

__all__ = ["Fig13Result", "run_fig13", "main"]

DEFAULT_NS = tuple(range(1, 11))
DEFAULT_TRIALS = 4


@dataclass
class Fig13Result:
    """Per-trial completion-time series for both approaches."""

    ns: list[int]
    #: trial index → series over ns
    pdagent: list[list[float]] = field(default_factory=list)
    client_server: list[list[float]] = field(default_factory=list)

    def trial_variance(self, series: list[list[float]]) -> list[float]:
        """Across-trial variance at each n (the paper's instability signal)."""
        arr = np.asarray(series)
        return [float(v) for v in arr.var(axis=0)]

    def to_csv(self) -> str:
        """CSV form: one row per (approach, trial, n) with completion time."""
        from .report import to_csv

        rows = []
        for approach, series in (
            ("client-server", self.client_server),
            ("pdagent", self.pdagent),
        ):
            for trial, values in enumerate(series):
                for n, value in zip(self.ns, values):
                    rows.append([approach, trial + 1, n, value])
        return to_csv(["approach", "trial", "n_transactions", "completion_s"], rows)

    def render(self) -> str:
        lines = []
        for title, series in (
            ("Figure 13a: Client-Server completion time (s)", self.client_server),
            ("Figure 13b: PDAgent completion time (s)", self.pdagent),
        ):
            headers = ["#txns"] + [f"trial {i + 1}" for i in range(len(series))] + [
                "variance"
            ]
            variances = self.trial_variance(series)
            rows = []
            for j, n in enumerate(self.ns):
                rows.append([n] + [series[t][j] for t in range(len(series))] + [variances[j]])
            lines.append(format_table(headers, rows, title=title))
            lines.append("")
        for t, series in enumerate(self.client_server):
            lines.append(format_series(f"client-server trial {t + 1}", self.ns, series))
        for t, series in enumerate(self.pdagent):
            lines.append(format_series(f"pdagent trial {t + 1}", self.ns, series))
        return "\n".join(lines)


def run_fig13(
    base_seed: int = 100,
    ns: tuple[int, ...] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    collector: Optional[TraceCollector] = None,
) -> Fig13Result:
    """Regenerate both panels of Figure 13.

    With a ``collector``, each cell's telemetry is captured under a
    ``fig13/<approach>/trial=<t>/n=<n>`` run label.
    """
    result = Fig13Result(ns=list(ns))
    for trial in range(trials):
        seed = base_seed + trial
        pdagent_series = []
        cs_series = []
        for n in ns:
            scenario = build_scenario(seed=seed)
            metrics = run_pdagent_batch(scenario, n)
            pdagent_series.append(metrics.completion_time)
            if collector is not None:
                collector.add_run(
                    f"fig13/pdagent/trial={trial + 1}/n={n}", scenario.network
                )

            scenario = build_scenario(seed=seed)
            runner = scenario.client_server_runner()
            proc = scenario.sim.process(runner.run(scenario.transactions(n)))
            cs = scenario.sim.run(until=proc)
            cs_series.append(cs.completion_time)
            if collector is not None:
                collector.add_run(
                    f"fig13/client-server/trial={trial + 1}/n={n}", scenario.network
                )
        result.pdagent.append(pdagent_series)
        result.client_server.append(cs_series)
    return result


def main(
    base_seed: int = 100,
    ns: tuple[int, ...] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    collector: Optional[TraceCollector] = None,
) -> Fig13Result:
    result = run_fig13(base_seed=base_seed, ns=ns, trials=trials, collector=collector)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
