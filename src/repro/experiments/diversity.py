"""Diversity experiment: a diurnal + flash-crowd day at city scale.

The swarm exercises the scenario-diversity machinery a few devices at a
time; this experiment runs it at population scale.  One simulated "day"
of traffic — a commute double peak shaped by a
:class:`~repro.simtest.traffic.DiurnalCurve` with a stadium-letting-out
:class:`~repro.simtest.traffic.FlashCrowd` pinned to two access-point
cells — drives 1,000+ devices through a three-gateway fleet.  Every
device runs one task drawn from the full application mix (e-banking,
food search, m-commerce, ride dispatch, auction sniping, grid job
farming), with auction tasks carrying real PI ``<deadline>`` elements
that the gateway tier enforces.

Cells map to gateways (``gw = cell % 3``), so the flash crowd
concentrates on the epicenter cells' gateway rather than smearing evenly
across the fleet — the admission layer there sheds, devices back off per
``Retry-After``, and the latency tail grows for exactly the app classes
caught in the spike.  Reported per app class: task count, completions,
completion rate, p50/p99 end-to-end latency; plus fleet-wide load sheds,
device-side shed waits, transport retries and deadline misses.

Determinism: arrivals, the app mix and every task parameter come from
named streams under the master seed (``diversity:arrivals``,
``diversity:flash``, ``diversity:apps``, ``diversity:params``), so a
fixed (seed, population) replays the simulated timeline byte-for-byte —
the property ``benchmarks/bench_diversity.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..apps import (
    AuctionHouseServiceAgent,
    AuctionSnipeAgent,
    BankServiceAgent,
    DirectoryServiceAgent,
    DriverBoardServiceAgent,
    EBankingAgent,
    FoodSearchAgent,
    GridForemanServiceAgent,
    GridWorkerServiceAgent,
    JobCourierAgent,
    JobFarmAgent,
    RideDispatchAgent,
    ShoppingAgent,
    VendorServiceAgent,
    auction_service_code,
    ebanking_service_code,
    foodsearch_service_code,
    jobfarm_service_code,
    make_drivers,
    make_inventory,
    make_listings,
    make_lots,
    make_transactions,
    mcommerce_service_code,
    ridedispatch_service_code,
)
from ..core import Deployment, DeploymentBuilder, PDAgentConfig
from ..core.errors import DeadlineExpiredError, PDAgentError
from ..device import link_profile
from ..mas import Stop
from ..simnet.rng import StreamFactory
from ..simtest.traffic import FlashCrowd, TrafficSpec, sample_arrivals
from ..telemetry.exporters import TraceCollector
from .overload import percentile
from .report import format_table

__all__ = [
    "ClassStats",
    "DiversityResult",
    "DEFAULT_DEVICES",
    "DEFAULT_TRAFFIC",
    "diversity_config",
    "run_diversity",
    "main",
]

#: The "1000+ devices" headline population (CI smoke caps via ``--max-n``).
DEFAULT_DEVICES = 1000
N_GATEWAYS = 3
N_APS = 6
SITES = ("metro-a", "metro-b", "metro-c")

#: The day's shape: a 240-simulated-second "day" with the classic commute
#: double hump (peak rate 4x the trough) and a flash crowd erupting just
#: after the midday trough at cells 0-1 — the stadium next to gw-0.
DEFAULT_TRAFFIC = TrafficSpec(
    day_s=240.0,
    peak_ratio=4.0,
    peaks=2,
    flash_at=132.0,
    flash_magnitude=3.0,
    flash_decay_s=8.0,
    flash_epicenter_ap=0,
    flash_radius=1,
)

#: App mix drawn per device from ``diversity:apps`` — every archetype the
#: platform ships, weighted toward the interactive classes.
APP_MIX = (
    ("ebanking",) * 3
    + ("foodsearch",) * 2
    + ("mcommerce",) * 2
    + ("ridedispatch",) * 3
    + ("auctionsnipe",) * 3
    + ("jobfarm",) * 2
)

#: Probability that a device in a flash cell joins the crowd, scaled by
#: the cell's spike weight (1 at the epicenter, attenuated to the edge).
FLASH_JOIN_P = 0.75

#: Auction deadlines are generous relative to quiet-day latency but real:
#: a device stuck behind enough shed waits arrives after its lot closes
#: and the gateway refuses the dispatch outright.
DEADLINE_SLACK_S = (90.0, 150.0)

_ZONES = ("downtown", "airport", "harbor", "uptown")


def diversity_config() -> PDAgentConfig:
    """Fleet sizing that makes the flash crowd *visible* but survivable.

    Admission is provisioned for the diurnal peaks, not the flash: the
    token bucket rides out the commute humps, while the onset pile-up at
    the epicenter gateway overflows the queue and sheds.  Shed devices
    retry per ``Retry-After`` and complete late — degradation, not
    collapse — which is exactly the tail the per-class p99 measures.
    """
    return PDAgentConfig(
        selection_policy="first",
        fleet_enabled=True,
        gateway_dispatch_workers=4,
        dispatch_cost_s=0.2,
        admission_queue_limit=8,
        admission_rate=4.0,
        admission_burst=4,
        shed_retry_after_s=1.0,
        retry_max_attempts=40,
        retry_deadline_s=600.0,
        retry_after_cap_s=15.0,
    )


@dataclass
class ClassStats:
    """Per-app-class aggregates for one run."""

    app: str
    n: int = 0
    completed: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n if self.n else 0.0

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 0.99)


@dataclass
class DiversityResult:
    """One diversity day's measurements."""

    seed: int
    n_devices: int
    gateways: int
    traffic: TrafficSpec
    classes: dict[str, ClassStats]
    flash_retimed: int
    sheds: int
    shed_waits: int
    transport_retries: int
    deadline_missed: int
    failed: int
    events_processed: int
    sim_time_s: float
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(c.completed for c in self.classes.values())

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n_devices if self.n_devices else 0.0

    def rows(self) -> list[list]:
        return [
            [
                stats.app,
                stats.n,
                f"{stats.completed}/{stats.n}",
                round(stats.completion_rate, 3),
                round(stats.p50, 2),
                round(stats.p99, 2),
            ]
            for stats in sorted(self.classes.values(), key=lambda s: s.app)
            if stats.n
        ]

    def render(self) -> str:
        table = format_table(
            ["app class", "tasks", "completed", "rate", "p50 (s)", "p99 (s)"],
            self.rows(),
            title=(
                f"Diversity day: {self.n_devices} devices, "
                f"{self.gateways}-gateway fleet, diurnal x{self.traffic.peak_ratio:.0f} "
                f"double peak, flash crowd at t={self.traffic.flash_at:.0f}s "
                f"(cells {self.traffic.flash_epicenter_ap}"
                f"±{self.traffic.flash_radius})"
            ),
        )
        extra = (
            f"overall {self.completed}/{self.n_devices} "
            f"({self.completion_rate:.1%}) | flash re-timed "
            f"{self.flash_retimed} device(s) | sheds {self.sheds}, "
            f"shed waits {self.shed_waits}, transport retries "
            f"{self.transport_retries} | deadline misses "
            f"{self.deadline_missed}, other failures {self.failed}"
        )
        return f"{table}\n{extra}"

    def to_csv(self) -> str:
        lines = ["app,tasks,completed,completion_rate,p50_s,p99_s"]
        for stats in sorted(self.classes.values(), key=lambda s: s.app):
            if stats.n:
                lines.append(
                    f"{stats.app},{stats.n},{stats.completed},"
                    f"{stats.completion_rate!r},{stats.p50!r},{stats.p99!r}"
                )
        lines.append(
            f"_total,{self.n_devices},{self.completed},"
            f"{self.completion_rate!r},,"
        )
        lines.append(f"_sheds,{self.sheds},,,,")
        lines.append(f"_shed_waits,{self.shed_waits},,,,")
        lines.append(f"_deadline_missed,{self.deadline_missed},,,,")
        return "\n".join(lines) + "\n"


def _build(seed: int, n_devices: int) -> Deployment:
    builder = DeploymentBuilder(master_seed=seed, config=diversity_config())
    builder.add_central("central")
    for g in range(N_GATEWAYS):
        builder.add_gateway(f"gw-{g}")
    for i, site in enumerate(SITES):
        partner = SITES[(i + 1) % len(SITES)]
        builder.add_site(
            site,
            services=[
                BankServiceAgent(bank_name=site),
                DirectoryServiceAgent(make_listings(i), partner=partner),
                VendorServiceAgent(make_inventory(i)),
                DriverBoardServiceAgent(make_drivers(i)),
                AuctionHouseServiceAgent(make_lots(i)),
                GridWorkerServiceAgent(),
                GridForemanServiceAgent(),
            ],
        )
    for cls in (
        EBankingAgent,
        FoodSearchAgent,
        ShoppingAgent,
        RideDispatchAgent,
        AuctionSnipeAgent,
        JobFarmAgent,
        JobCourierAgent,
    ):
        builder.register_agent_class(cls)
    for code in (
        ebanking_service_code(),
        foodsearch_service_code(),
        mcommerce_service_code(),
        ridedispatch_service_code(),
        auction_service_code(),
        jobfarm_service_code(),
    ):
        builder.publish(code)
    # City cells: AP routers between the device radios and the backbone.
    for j in range(N_APS):
        builder.network.add_node(f"ap-{j}", kind="router")
        builder.network.add_duplex_link(
            f"ap-{j}", "backbone", link_profile("LAN")
        )
    for i in range(n_devices):
        builder.add_device(
            f"dev-{i}",
            profile="PDA",
            wireless="WLAN",
            attach_to=f"ap-{i % N_APS}",
        )
    return builder.build()


def _plan_tasks(
    seed: int, n_devices: int, traffic: TrafficSpec
) -> tuple[list[dict[str, Any]], int]:
    """The day's task list: (plans, flash_retimed_count).

    One plan per device — app class, service params, stops, arrival time,
    deadline — all drawn from named streams so the plan (and therefore
    the whole simulated day) is a pure function of (seed, n_devices,
    traffic).
    """
    streams = StreamFactory(master_seed=seed)
    arrivals_s = streams.get("diversity:arrivals")
    flash_s = streams.get("diversity:flash")
    apps_s = streams.get("diversity:apps")
    params_s = streams.get("diversity:params")

    curve = traffic.curve(daily_tasks=float(n_devices))
    arrivals = sample_arrivals(arrivals_s, curve, n_devices)
    flash: Optional[FlashCrowd] = traffic.flash()

    plans: list[dict[str, Any]] = []
    flash_retimed = 0
    for i in range(n_devices):
        arrival = arrivals[i]
        cell = i % N_APS
        if flash is not None:
            weight = flash.cell_weight(cell)
            if weight > 0.0 and flash_s.bernoulli(FLASH_JOIN_P * weight):
                arrival = round(
                    flash.at + flash.sample_offset(flash_s.uniform(0.0, 1.0)),
                    3,
                )
                flash_retimed += 1
        app = str(apps_s.choice(list(APP_MIX)))
        site = SITES[i % len(SITES)]
        deadline = 0.0
        if app == "ebanking":
            service, params = "ebanking", {
                "transactions": make_transactions([site], 1)
            }
            stops = [Stop(site, task="banking")]
        elif app == "foodsearch":
            service, params = "foodsearch", {
                "cuisine": str(params_s.choice(["cantonese", "thai", "italian"])),
                "max_price": params_s.randint(80, 200),
                "limit": 5,
            }
            stops = [Stop(site, task="search")]
        elif app == "mcommerce":
            service, params = "mcommerce", {
                "item": str(params_s.choice(["camera", "phone", "pda"])),
                "budget": round(params_s.uniform(250.0, 450.0), 3),
            }
            stops = [Stop(site, task="shopping")]
        elif app == "ridedispatch":
            service, params = "ridedispatch", {
                "zone": str(params_s.choice(list(_ZONES))),
                "max_eta_s": 600.0,
            }
            stops = [Stop(site, task="match")]
        elif app == "auctionsnipe":
            deadline = round(
                arrival + params_s.uniform(*DEADLINE_SLACK_S), 3
            )
            service, params = "auctionsnipe", {
                "lot": f"lot-{params_s.randint(0, 5)}",
                "budget": round(params_s.uniform(150.0, 520.0), 3),
                "deadline": deadline,
            }
            stops = [Stop(site, task="quote")]
        else:  # jobfarm
            size = params_s.randint(1, 3)
            shard_sites = [site, SITES[(i + 1) % len(SITES)]]
            service, params = "jobfarm", {
                "job": {
                    "name": f"{params_s.choice(['render', 'index'])}-{size}",
                    "size": size,
                },
                "sites": shard_sites,
            }
            stops = [Stop(shard_sites[0], task="farm")]
        plans.append(
            {
                "device": i,
                "app": app,
                "service": service,
                "params": params,
                "stops": stops,
                "arrival": arrival,
                "deadline": deadline,
            }
        )
    return plans, flash_retimed


def run_diversity(
    seed: int = 0,
    n_devices: int = DEFAULT_DEVICES,
    traffic: TrafficSpec = DEFAULT_TRAFFIC,
    collector: Optional[TraceCollector] = None,
    label: str = "",
) -> DiversityResult:
    """One diversity day; same (seed, n_devices, traffic) ⇒ identical replay.

    Every device pre-subscribes to its service (the un-measured morning
    sync), then at its sampled arrival time deploys its agent through its
    cell's gateway, waits for the ticket and collects.  Auction tasks
    deploy with their PI deadline; a gateway refusing an expired dispatch
    counts as a deadline miss, not a retryable failure.
    """
    deployment = _build(seed, n_devices)
    sim = deployment.sim
    plans, flash_retimed = _plan_tasks(seed, n_devices, traffic)
    classes = {app: ClassStats(app=app) for app in sorted(set(APP_MIX))}
    outcomes: list[dict[str, Any]] = []
    deadline_missed = 0
    failed = 0

    def prewarm(plan: dict[str, Any]) -> Generator:
        platform = deployment.platform(f"dev-{plan['device']}")
        yield from platform.selector.refresh_list()
        gateway = f"gw-{(plan['device'] % N_APS) % N_GATEWAYS}"
        yield from platform.subscribe(plan["service"], gateway=gateway)
        return True

    procs = [
        sim.process(prewarm(plan), name=f"diversity-prewarm:{plan['device']}")
        for plan in plans
    ]
    sim.run(until=sim.all_of(procs))

    def one_task(plan: dict[str, Any]) -> Generator:
        nonlocal deadline_missed, failed
        i = plan["device"]
        platform = deployment.platform(f"dev-{i}")
        gateway = f"gw-{(i % N_APS) % N_GATEWAYS}"
        stats = classes[plan["app"]]
        stats.n += 1
        yield sim.timeout(plan["arrival"])
        t0 = sim.now
        out = {"device": i, "app": plan["app"], "ok": False, "detail": ""}
        outcomes.append(out)
        try:
            handle = yield from platform.deploy(
                plan["service"],
                plan["params"],
                stops=plan["stops"],
                gateway=gateway,
                deadline=plan["deadline"],
            )
            yield deployment.gateway(handle.gateway).ticket(handle.ticket).completed
            result = yield from platform.collect(handle)
        except DeadlineExpiredError as exc:
            deadline_missed += 1
            out["detail"] = f"deadline: {exc}"
            return
        except PDAgentError as exc:
            failed += 1
            out["detail"] = f"{type(exc).__name__}: {exc}"
            return
        out["ok"] = result.status == "completed"
        out["detail"] = f"status {result.status!r}"
        if out["ok"]:
            stats.completed += 1
            stats.latencies.append(round(sim.now - t0, 6))
        else:
            failed += 1

    workload = [
        sim.process(one_task(plan), name=f"diversity-task:{plan['device']}")
        for plan in plans
    ]
    sim.run(until=sim.all_of(workload))
    if collector is not None:
        collector.add_run(
            label or f"diversity/{n_devices}", deployment.network
        )
    counters = deployment.network.tracer.counters
    platforms = [deployment.platform(f"dev-{i}") for i in range(n_devices)]
    for stats in classes.values():
        stats.latencies.sort()
    return DiversityResult(
        seed=seed,
        n_devices=n_devices,
        gateways=N_GATEWAYS,
        traffic=traffic,
        classes=classes,
        flash_retimed=flash_retimed,
        sheds=counters.get("gateway.shed", 0),
        shed_waits=sum(p.netmanager.shed_waits for p in platforms),
        transport_retries=sum(p.netmanager.retries for p in platforms),
        deadline_missed=deadline_missed,
        failed=failed,
        events_processed=sim.events_processed,
        sim_time_s=sim.now,
        outcomes=sorted(outcomes, key=lambda o: o["device"]),
    )


def main(
    seed: int = 0,
    n_devices: int = DEFAULT_DEVICES,
    collector: Optional[TraceCollector] = None,
) -> DiversityResult:
    result = run_diversity(seed=seed, n_devices=n_devices, collector=collector)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
