"""Fault-tolerance experiment: the Fig. 12 workload under injected faults.

The paper's §3.5 reliability argument ("it also helps to provide a reliable
network connection") is qualitative; this experiment makes it measurable.
The e-banking workload is run as a sequence of periodic tasks while a
:class:`~repro.simnet.faults.FaultSchedule` degrades the wireless link, cuts
it entirely, and crashes a bank site and a gateway.  Both approaches face
the *same* schedule:

* **PDAgent** is online only for the short PI upload and result download;
  transport failures inside those windows are retried with backoff, a dead
  gateway fails over to the next-best one, a dead tour site is skipped (or
  recovered by the home guardian), and a lost agent is finalized "failed"
  by the ticket watchdog instead of hanging the user.
* **Client-server** holds a connection for the whole batch, so any fault
  overlapping the (much longer) session kills the task outright.

Reported per approach: task completion rate, connection time added by the
faults (vs a fault-free twin run with the same seed), and retry counts —
the reproduction's Fig. 12 companion under adverse conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..core.errors import PDAgentError
from ..simnet.faults import FaultSchedule, LinkDegrade, LinkDown, NodeCrash
from ..simnet.topology import NoRouteError
from ..simnet.transport import ConnectionClosed, TransportError
from ..telemetry.exporters import TraceCollector
from .report import format_table
from .scenario import EvaluationScenario, build_scenario

__all__ = [
    "FaultRunResult",
    "FaultComparison",
    "reference_schedule",
    "run_pdagent_under_faults",
    "run_client_server_under_faults",
    "run_fault_comparison",
    "main",
]

#: One task is launched every PERIOD seconds (a user submitting a batch).
TASK_PERIOD_S = 60.0
DEFAULT_N_TASKS = 6
DEFAULT_N_TXNS = 4

#: How often (and how long) the device re-tries collecting a finished
#: result when the first download attempt fails — the "user reconnects a
#: little later" behaviour PDAgent's disconnected operation affords.
COLLECT_ATTEMPTS = 3
COLLECT_RETRY_WAIT_S = 10.0


def reference_schedule(
    n_tasks: int = DEFAULT_N_TASKS, period: float = TASK_PERIOD_S
) -> FaultSchedule:
    """The experiment's fault script (times relative to workload start).

    * an early lossy/slow window on the wireless link (retransmissions and
      device-side retries, but no hard failures);
    * a full wireless outage in the middle of every *odd* task period —
      client-server sessions (~20–25 s long on GPRS) are still connected
      then; PDAgent's online windows are already over;
    * ``bank-b`` crashes across task 2's tour (agent skips / recovers, the
      client-server session is refused);
    * ``gw-0`` crashes just before task 3's upload (PDAgent retries, then
      fails over to ``gw-1``; client-server does not use gateways).
    """
    schedule = FaultSchedule()
    schedule.add(
        LinkDegrade(
            "pda", "backbone", at=5.0, duration=6.0,
            latency_factor=1.5, loss=0.3,
        )
    )
    for k in range(1, n_tasks, 2):
        schedule.add(LinkDown("pda", "backbone", at=k * period + 12.0, duration=8.0))
    if n_tasks > 2:
        schedule.add(NodeCrash("bank-b", at=2 * period + 2.0, duration=20.0))
    if n_tasks > 3:
        schedule.add(NodeCrash("gw-0", at=3 * period - 2.0, duration=12.0))
    return schedule


@dataclass
class FaultRunResult:
    """One approach's aggregate over the faulted (or fault-free) workload."""

    approach: str
    seed: int
    n_tasks: int
    n_transactions: int
    completed: int
    connection_time: float
    retries: int
    retransmissions: int
    faults_injected: int
    watchdog_failures: int
    sites_skipped: int
    redispatches: int
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n_tasks if self.n_tasks else 0.0

    @property
    def connection_time_per_completed(self) -> float:
        """Connection seconds spent per *successful* task.

        Failed client-server sessions still paid for their connection up to
        the fault, so this is the metric where wasted online time shows —
        total connection time alone can *shrink* under faults (sessions die
        early) while the cost of useful work explodes.
        """
        if not self.completed:
            return float("inf")
        return self.connection_time / self.completed


@dataclass
class FaultComparison:
    """Faulted runs plus their fault-free twins (same seeds)."""

    pdagent: FaultRunResult
    pdagent_baseline: FaultRunResult
    client_server: FaultRunResult
    client_server_baseline: FaultRunResult

    @property
    def pdagent_added_connection_time(self) -> float:
        return self.pdagent.connection_time - self.pdagent_baseline.connection_time

    @property
    def client_server_added_connection_time(self) -> float:
        return (
            self.client_server.connection_time
            - self.client_server_baseline.connection_time
        )

    def rows(self) -> list[list]:
        def row(
            name: str, run: FaultRunResult, baseline: FaultRunResult, added: float
        ) -> list:
            return [
                name,
                f"{run.completed}/{run.n_tasks}",
                f"{100.0 * run.completion_rate:.0f}%",
                round(run.connection_time, 2),
                round(added, 2),
                round(run.connection_time_per_completed, 2),
                round(baseline.connection_time_per_completed, 2),
                run.retries,
                run.retransmissions,
            ]

        return [
            row(
                "PDAgent",
                self.pdagent,
                self.pdagent_baseline,
                self.pdagent_added_connection_time,
            ),
            row(
                "Client-Server",
                self.client_server,
                self.client_server_baseline,
                self.client_server_added_connection_time,
            ),
        ]

    def render(self) -> str:
        table = format_table(
            [
                "approach",
                "completed",
                "rate",
                "conn time (s)",
                "added by faults (s)",
                "s/completed",
                "fault-free s/completed",
                "retries",
                "retransmits",
            ],
            self.rows(),
            title=(
                "Fault tolerance: e-banking workload under the reference "
                f"fault schedule ({self.pdagent.faults_injected} fault "
                "transitions recorded)"
            ),
        )
        extra = (
            f"PDAgent recovery: {self.pdagent.sites_skipped} site(s) skipped, "
            f"{self.pdagent.redispatches} checkpoint re-dispatch(es), "
            f"{self.pdagent.watchdog_failures} watchdog-failed ticket(s)"
        )
        return f"{table}\n{extra}"


def _install(scenario: EvaluationScenario, schedule: Optional[FaultSchedule]) -> None:
    if schedule is not None and len(schedule):
        schedule.install(scenario.network)


def _collect_counters(scenario: EvaluationScenario) -> dict[str, int]:
    counters = scenario.network.tracer.counters
    return {
        "watchdog_failures": counters.get("gateway_watchdog_failures", 0),
        "sites_skipped": counters.get("sites_skipped", 0),
        "redispatches": counters.get("agents_redispatched", 0),
        "retransmissions": sum(l.retransmissions for l in scenario.network.links),
    }


def run_pdagent_under_faults(
    seed: int = 0,
    n_tasks: int = DEFAULT_N_TASKS,
    n_transactions: int = DEFAULT_N_TXNS,
    schedule: Optional[FaultSchedule] = None,
    collector: Optional[TraceCollector] = None,
    label: str = "faults/pdagent",
) -> FaultRunResult:
    """Run ``n_tasks`` periodic PDAgent batches under ``schedule``.

    A task succeeds when its ticket completes and the result document is
    collected with status ``"completed"``.  Tickets the watchdog finalizes
    as ``"failed"``, deployments that exhaust retry + failover, and
    uncollectable results count as failures.

    Selection runs with the ``"first"`` policy (always ``gw-0``) instead of
    the paper's RTT-nearest one so the schedule's ``gw-0`` crash provably
    hits the gateway the device is about to use — the retry budget, the
    circuit breaker, and the failover to ``gw-1`` are all exercised on the
    same seed every run.
    """
    from ..core import PDAgentConfig

    scenario = build_scenario(
        seed=seed, n_gateways=2, config=PDAgentConfig(selection_policy="first")
    )
    sim = scenario.sim
    platform = scenario.platform
    _install(scenario, schedule)
    t_base = sim.now
    txns = scenario.transactions(n_transactions)
    outcomes: list[dict[str, Any]] = []

    def task(k: int) -> Generator:
        yield sim.timeout(k * TASK_PERIOD_S)
        out: dict[str, Any] = {"task": k, "ok": False, "detail": ""}
        outcomes.append(out)
        try:
            handle = yield from platform.deploy(
                "ebanking", {"transactions": txns}, stops=scenario.stops()
            )
        except PDAgentError as exc:
            out["detail"] = f"deploy failed: {exc}"
            return
        ticket = scenario.deployment.gateway(handle.gateway).ticket(handle.ticket)
        disposition = yield ticket.completed
        if disposition != "completed":
            out["detail"] = f"ticket finalized {disposition!r}"
            return
        for attempt in range(COLLECT_ATTEMPTS):
            try:
                result = yield from platform.collect(handle)
            except PDAgentError as exc:
                out["detail"] = f"collect failed: {exc}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            out["ok"] = result.status == "completed"
            out["detail"] = f"status {result.status!r} via {handle.gateway}"
            return

    procs = [sim.process(task(k), name=f"fault-task:{k}") for k in range(n_tasks)]
    sim.run(until=sim.all_of(procs))
    if collector is not None:
        collector.add_run(label, scenario.network)
    counters = _collect_counters(scenario)
    return FaultRunResult(
        approach="pdagent",
        seed=seed,
        n_tasks=n_tasks,
        n_transactions=n_transactions,
        completed=sum(1 for o in outcomes if o["ok"]),
        connection_time=scenario.network.tracer.connection_time(
            platform.device.address, since=t_base
        ),
        retries=platform.netmanager.retries,
        faults_injected=len(scenario.network.tracer.faults),
        outcomes=sorted(outcomes, key=lambda o: o["task"]),
        **counters,
    )


def run_client_server_under_faults(
    seed: int = 0,
    n_tasks: int = DEFAULT_N_TASKS,
    n_transactions: int = DEFAULT_N_TXNS,
    schedule: Optional[FaultSchedule] = None,
    collector: Optional[TraceCollector] = None,
    label: str = "faults/client-server",
) -> FaultRunResult:
    """Client-server twin of :func:`run_pdagent_under_faults`.

    Each task is one connected session per bank; a transport failure while
    the session is open fails the whole task (there is no agent to carry
    the work through the outage).
    """
    scenario = build_scenario(seed=seed, n_gateways=2)
    sim = scenario.sim
    _install(scenario, schedule)
    t_base = sim.now
    txns = scenario.transactions(n_transactions)
    outcomes: list[dict[str, Any]] = []

    def task(k: int) -> Generator:
        yield sim.timeout(k * TASK_PERIOD_S)
        out: dict[str, Any] = {"task": k, "ok": False, "detail": ""}
        outcomes.append(out)
        runner = scenario.client_server_runner()
        try:
            res = yield from runner.run(list(txns))
        except (TransportError, NoRouteError, ConnectionClosed) as exc:
            out["detail"] = f"session failed: {exc}"
            return
        ok_details = [d for d in res.details if d.get("status") == "ok"]
        out["ok"] = len(ok_details) == len(txns)
        out["detail"] = f"{len(ok_details)}/{len(txns)} transactions ok"

    procs = [sim.process(task(k), name=f"cs-fault-task:{k}") for k in range(n_tasks)]
    sim.run(until=sim.all_of(procs))
    if collector is not None:
        collector.add_run(label, scenario.network)
    counters = _collect_counters(scenario)
    return FaultRunResult(
        approach="client-server",
        seed=seed,
        n_tasks=n_tasks,
        n_transactions=n_transactions,
        completed=sum(1 for o in outcomes if o["ok"]),
        connection_time=scenario.network.tracer.connection_time("pda", since=t_base),
        retries=0,  # the model has no application-level retry to count
        faults_injected=len(scenario.network.tracer.faults),
        outcomes=sorted(outcomes, key=lambda o: o["task"]),
        **counters,
    )


def run_fault_comparison(
    seed: int = 0,
    n_tasks: int = DEFAULT_N_TASKS,
    n_transactions: int = DEFAULT_N_TXNS,
    collector: Optional[TraceCollector] = None,
) -> FaultComparison:
    """Both approaches, faulted and fault-free, same seed throughout."""
    schedule = reference_schedule(n_tasks)
    return FaultComparison(
        pdagent=run_pdagent_under_faults(
            seed, n_tasks, n_transactions, schedule=schedule,
            collector=collector, label="faults/pdagent",
        ),
        pdagent_baseline=run_pdagent_under_faults(
            seed, n_tasks, n_transactions,
            collector=collector, label="faults/pdagent-baseline",
        ),
        client_server=run_client_server_under_faults(
            seed, n_tasks, n_transactions, schedule=reference_schedule(n_tasks),
            collector=collector, label="faults/client-server",
        ),
        client_server_baseline=run_client_server_under_faults(
            seed, n_tasks, n_transactions,
            collector=collector, label="faults/client-server-baseline",
        ),
    )


def main(seed: int = 0, collector: Optional[TraceCollector] = None) -> FaultComparison:
    comparison = run_fault_comparison(seed=seed, collector=collector)
    print(comparison.render())
    return comparison


if __name__ == "__main__":  # pragma: no cover
    main()
