"""Plain-text and CSV reporting: the tables/series the paper's figures plot."""

from __future__ import annotations

import csv
import io
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_series", "print_table", "to_csv", "write_csv"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width table (markdown-ish) for terminal output."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[float]) -> str:
    """One figure series as ``name: (x, y) ...`` pairs."""
    pairs = "  ".join(f"({x}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> None:
    print(format_table(headers, rows, title))


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """The same table as CSV text (full float precision, for plotting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> None:
    """Write the table to ``path`` as CSV."""
    with open(path, "w", newline="") as fh:
        fh.write(to_csv(headers, rows))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
