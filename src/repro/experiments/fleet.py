"""Fleet experiment: exactly-once and collect-anywhere across a gateway tier.

The paper's operating environment (Fig. 3) deploys *multiple* gateways so a
moving device can always reach a nearby one.  That mobility has a sharp
correctness edge: a device that uploads a task at gateway A, loses the
reply, and retries the same task at gateway B is asking the *tier* — not
any single gateway — to keep the task exactly-once.  Per-gateway dedup
tables cannot see each other, so the pre-fleet platform launches a second
agent for every roamed retry.

This experiment drives that exact pattern at population scale.  Device
``k`` uploads through ``gw-(k%3)``, immediately re-uploads the *same
task_id* through ``gw-((k+1)%3)`` (the roamed retry), and later collects
through ``gw-((k+2)%3)`` — a third gateway that never saw the upload.
Mid-collect, one gateway crashes and restarts, so the collect path must
also survive an owner outage.  Two modes face identical seeds and timing:

* **fleet** — this PR's tier: consistent-hash task ownership, claim
  forwarding to the owner, sqlite-backed durable stores, collect-anywhere
  relays.  The roamed retry is answered with the *winning* ticket (claim
  verdict ``bound``), so exactly one agent runs per task.
* **baseline** — the pre-fleet platform: same dedup logic, but per-gateway
  and memory-backed.  Gateway B has never heard of the task, so every
  roamed retry dispatches a **duplicate agent**.

Reported per (population, mode): completion rate, agents actually
dispatched vs duplicates, claim verdicts, supersedes, relays and dedup
hits.  The headline: the fleet keeps duplicates at zero and completes every
collect through a third gateway across the crash; the baseline duplicates
every roamed task.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..apps.ebanking import (
    BankServiceAgent,
    EBankingAgent,
    ebanking_service_code,
    make_transactions,
)
from ..core import Deployment, DeploymentBuilder, PDAgentConfig
from ..core.errors import PDAgentError
from ..device import link_profile
from ..mas import Stop
from ..telemetry.exporters import TraceCollector
from .report import format_table

__all__ = [
    "FleetRunResult",
    "FleetSweepResult",
    "fleet_config",
    "run_fleet",
    "run_fleet_sweep",
    "main",
]

GATEWAYS = ("gw-0", "gw-1", "gw-2")
BANKS = ("bank-a", "bank-b")
ACCESS_POINT = "ap"

#: Device populations swept (CI smoke caps this via ``--max-n``).
DEFAULT_POPULATIONS = (3, 6, 9, 12)

#: Device ``k`` uploads at ``k * STAGGER_S``; all uploads (and their fleet
#: claims) complete well before the crash window below.
STAGGER_S = 0.2
N_TXNS = 1

#: One gateway crashes mid-experiment and restarts ``CRASH_DOWN_S`` later.
#: The window sits *after* the upload/claim phase (so the fleet's zero
#: duplicates are earned by the protocol, not by luck) and *inside* the
#: collect phase (so collects provably ride through an owner outage).
CRASH_GATEWAY = "gw-1"
CRASH_AT_S = 8.0
CRASH_DOWN_S = 5.0

#: Collects start mid-outage and retry until the tier recovers.
COLLECT_AT_S = 9.0
COLLECT_ATTEMPTS = 8
COLLECT_RETRY_WAIT_S = 2.5


def fleet_config(enabled: bool) -> PDAgentConfig:
    """Identical platform tuning for both modes; only the tier differs.

    The baseline keeps dedup *on* — it is not a strawman; each gateway
    faithfully deduplicates what it can see.  The failure under test is
    structural: per-gateway tables cannot cover a roaming retry.
    """
    return PDAgentConfig(
        selection_policy="first",
        retry_deadline_s=600.0,
        fleet_enabled=enabled,
        storage_backend="sqlite" if enabled else "memory",
        dedup_ttl_s=120.0 if enabled else 0.0,
    )


@dataclass
class FleetRunResult:
    """One (population, mode) run's aggregates."""

    mode: str
    seed: int
    n_devices: int
    completed: int
    collected_elsewhere: int
    dispatches: int
    duplicate_dispatches: int
    claims_granted: int
    claims_bound: int
    local_accepts: int
    supersedes: int
    relays: int
    dedup_hits: int
    #: Simulated completion time of the whole run and the kernel's event
    #: count — the determinism/overhead handles the benchmark gate uses.
    sim_end: float = 0.0
    events_processed: int = 0
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.n_devices if self.n_devices else 0.0


def _build(seed: int, n_devices: int, enabled: bool) -> Deployment:
    builder = DeploymentBuilder(master_seed=seed, config=fleet_config(enabled))
    builder.add_central("central")
    for gw in GATEWAYS:
        builder.add_gateway(gw)
    for bank in BANKS:
        builder.add_site(bank, services=[BankServiceAgent(bank_name=bank)])
    lan = link_profile("LAN")
    builder.network.add_node(ACCESS_POINT, kind="router")
    builder.network.add_duplex_link(ACCESS_POINT, "backbone", lan)
    for k in range(n_devices):
        builder.add_device(
            f"pda-{k}", profile="PDA", wireless="WLAN", attach_to=ACCESS_POINT
        )
    builder.register_agent_class(EBankingAgent)
    builder.publish(ebanking_service_code())
    deployment = builder.build()
    _prewarm(deployment, n_devices)
    return deployment


def _prewarm(deployment: Deployment, n_devices: int) -> None:
    """Address list + subscription per device, before the measured phase."""
    sim = deployment.sim

    def setup(k: int) -> Generator:
        platform = deployment.platform(f"pda-{k}")
        yield from platform.selector.refresh_list()
        yield from platform.subscribe("ebanking", gateway=GATEWAYS[0])
        return True

    procs = [
        sim.process(setup(k), name=f"fleet-prewarm:{k}")
        for k in range(n_devices)
    ]
    sim.run(until=sim.all_of(procs))


def _final_ticket(deployment: Deployment, gateway: str, ticket_id: str):
    """The ticket object a handle names, following supersede pointers."""
    origin, sep, _ = ticket_id.partition("/t-")
    home = origin if sep and origin in deployment.gateways else gateway
    ticket = deployment.gateway(home).ticket(ticket_id)
    for _ in range(4):
        if ticket.status == "superseded" and ticket.superseded_by:
            winner = ticket.superseded_by
            origin, sep, _ = winner.partition("/t-")
            home = origin if sep and origin in deployment.gateways else home
            ticket = deployment.gateway(home).ticket(winner)
            continue
        return ticket
    return ticket


def run_fleet(
    seed: int = 0,
    n_devices: int = 6,
    enabled: bool = True,
    collector: Optional[TraceCollector] = None,
    label: str = "",
) -> FleetRunResult:
    """One population under one mode; same seed ⇒ identical replay.

    Per device ``k``: upload at ``gw-(k%3)``, roamed retry of the same
    ``task_id`` at ``gw-((k+1)%3)``, collect at ``gw-((k+2)%3)`` starting
    mid-crash-window.  A task succeeds when the collect through the third
    gateway returns status ``"completed"``.
    """
    mode = "fleet" if enabled else "baseline"
    deployment = _build(seed, n_devices, enabled)
    sim = deployment.sim
    network = deployment.network
    txns = make_transactions(list(BANKS), N_TXNS)
    stops = [Stop(bank, task="banking") for bank in BANKS]
    outcomes: list[dict[str, Any]] = []

    def task(k: int) -> Generator:
        platform = deployment.platform(f"pda-{k}")
        upload_gw = GATEWAYS[k % len(GATEWAYS)]
        retry_gw = GATEWAYS[(k + 1) % len(GATEWAYS)]
        collect_gw = GATEWAYS[(k + 2) % len(GATEWAYS)]
        out: dict[str, Any] = {
            "device": k, "ok": False, "detail": "",
            "upload": upload_gw, "retry": retry_gw, "collect": collect_gw,
        }
        outcomes.append(out)
        yield sim.timeout(k * STAGGER_S)
        task_id = platform.dispatcher.new_task_id()
        try:
            handle = yield from platform.deploy(
                "ebanking", {"transactions": txns}, stops=stops,
                gateway=upload_gw, task_id=task_id,
            )
        except PDAgentError as exc:
            out["detail"] = f"upload failed: {exc}"
            return
        # The roamed retry: the device moved (or never saw the reply) and
        # re-uploads the same task through a different gateway.
        try:
            handle = yield from platform.deploy(
                "ebanking", {"transactions": txns}, stops=stops,
                gateway=retry_gw, task_id=task_id,
            )
        except PDAgentError as exc:
            out["detail"] = f"roamed retry failed: {exc}"
        ticket = _final_ticket(deployment, handle.gateway, handle.ticket)
        yield ticket.completed
        # Collect through a third gateway, starting inside the crash window.
        if sim.now < COLLECT_AT_S + k * STAGGER_S:
            yield sim.timeout(COLLECT_AT_S + k * STAGGER_S - sim.now)
        last = ""
        for _ in range(COLLECT_ATTEMPTS):
            try:
                result = yield from platform.collect(handle, via=collect_gw)
            except PDAgentError as exc:
                last = f"collect failed: {exc}"
                yield sim.timeout(COLLECT_RETRY_WAIT_S)
                continue
            out["ok"] = result.status == "completed"
            out["detail"] = f"status {result.status!r}"
            return
        out["detail"] = last

    def crash() -> Generator:
        gateway = deployment.gateway(CRASH_GATEWAY)
        yield sim.timeout(CRASH_AT_S)
        gateway.crash()
        network.tracer.log_fault(
            "gateway-crash", CRASH_GATEWAY, detail=f"for {CRASH_DOWN_S:g}s"
        )
        yield sim.timeout(CRASH_DOWN_S)
        rebuilt = gateway.restart()
        network.tracer.log_fault(
            "gateway-restart", CRASH_GATEWAY,
            detail=f"{rebuilt} dedup bindings rebuilt",
        )

    procs = [
        sim.process(task(k), name=f"fleet-task:{k}")
        for k in range(n_devices)
    ]
    sim.process(crash(), name="fleet-crash")
    sim.run(until=sim.all_of(procs))
    if collector is not None:
        collector.add_run(label or f"fleet/{mode}-{n_devices}", network)
    counters = network.tracer.counters
    dispatched = [
        t
        for gw in GATEWAYS
        for t in deployment.gateway(gw).tickets()
        if t.agent_id
    ]
    per_task = Counter(t.task_id for t in dispatched if t.task_id)
    return FleetRunResult(
        mode=mode,
        seed=seed,
        n_devices=n_devices,
        completed=sum(1 for o in outcomes if o["ok"]),
        collected_elsewhere=sum(
            1 for o in outcomes if o["ok"] and o["collect"] != o["upload"]
        ),
        dispatches=len(dispatched),
        duplicate_dispatches=sum(c - 1 for c in per_task.values() if c > 1),
        claims_granted=counters.get("fleet.claims_granted", 0),
        claims_bound=counters.get("fleet.claim_bound", 0),
        local_accepts=counters.get("fleet.local_accepts", 0),
        supersedes=counters.get("gateway_superseded", 0),
        relays=counters.get("gateway_relays", 0),
        dedup_hits=counters.get("gateway.dedup_hit", 0),
        sim_end=sim.now,
        events_processed=sim.events_processed,
        outcomes=sorted(outcomes, key=lambda o: o["device"]),
    )


@dataclass
class FleetSweepResult:
    """Fleet vs baseline across the population sweep (same seeds)."""

    seed: int
    populations: tuple[int, ...]
    fleet: list[FleetRunResult]
    baseline: list[FleetRunResult]

    def pairs(self) -> list[tuple[FleetRunResult, FleetRunResult]]:
        return list(zip(self.fleet, self.baseline))

    def rows(self) -> list[list]:
        rows = []
        for pair in self.pairs():
            for run in pair:
                rows.append(
                    [
                        run.n_devices,
                        run.mode,
                        f"{run.completed}/{run.n_devices}",
                        run.collected_elsewhere,
                        run.dispatches,
                        run.duplicate_dispatches,
                        run.claims_bound,
                        run.supersedes,
                        run.relays,
                        run.dedup_hits,
                    ]
                )
        return rows

    def render(self) -> str:
        table = format_table(
            [
                "devices",
                "mode",
                "completed",
                "collect-anywhere",
                "dispatches",
                "dup dispatches",
                "claims bound",
                "supersedes",
                "relays",
                "dedup hits",
            ],
            self.rows(),
            title=(
                "Fleet: roamed retries + third-gateway collects across a "
                f"{CRASH_GATEWAY} crash at t={CRASH_AT_S:g}s"
            ),
        )
        worst = self.pairs()[-1]
        extra = (
            f"At n={worst[0].n_devices}: fleet dispatched "
            f"{worst[0].dispatches} agent(s) for {worst[0].n_devices} "
            f"task(s) ({worst[0].duplicate_dispatches} duplicate(s)); "
            f"baseline dispatched {worst[1].dispatches} "
            f"({worst[1].duplicate_dispatches} duplicate(s))"
        )
        return f"{table}\n{extra}"

    def to_csv(self) -> str:
        lines = [
            "devices,mode,completed,completion_rate,collected_elsewhere,"
            "dispatches,duplicate_dispatches,claims_granted,claims_bound,"
            "local_accepts,supersedes,relays,dedup_hits"
        ]
        for pair in self.pairs():
            for run in pair:
                lines.append(
                    f"{run.n_devices},{run.mode},{run.completed},"
                    f"{run.completion_rate!r},{run.collected_elsewhere},"
                    f"{run.dispatches},{run.duplicate_dispatches},"
                    f"{run.claims_granted},{run.claims_bound},"
                    f"{run.local_accepts},{run.supersedes},{run.relays},"
                    f"{run.dedup_hits}"
                )
        return "\n".join(lines) + "\n"


def run_fleet_sweep(
    seed: int = 0,
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    collector: Optional[TraceCollector] = None,
) -> FleetSweepResult:
    """Both modes per population, same seeds, identical timing."""
    fleet_runs, baseline_runs = [], []
    for n in populations:
        fleet_runs.append(
            run_fleet(
                seed, n, enabled=True,
                collector=collector, label=f"fleet/fleet-{n}",
            )
        )
        baseline_runs.append(
            run_fleet(
                seed, n, enabled=False,
                collector=collector, label=f"fleet/baseline-{n}",
            )
        )
    return FleetSweepResult(
        seed=seed,
        populations=tuple(populations),
        fleet=fleet_runs,
        baseline=baseline_runs,
    )


def main(
    seed: int = 0,
    populations: tuple[int, ...] = DEFAULT_POPULATIONS,
    collector: Optional[TraceCollector] = None,
) -> FleetSweepResult:
    result = run_fleet_sweep(
        seed=seed, populations=populations, collector=collector
    )
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
