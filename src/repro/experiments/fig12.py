"""Figure 12 — "Internet connection times: three different approaches".

The paper sweeps the number of transactions from 1 to 10 and plots the
device's total internet connection time for PDAgent, the client-server
model, and the web-based approach.  Expected shape:

* client-server and web-based grow roughly linearly (the user stays
  connected from request until the service completes);
* PDAgent stays flat: one short PI upload + one short result download,
  independent of the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..telemetry.exporters import TraceCollector
from .report import format_series, format_table
from .scenario import build_scenario, run_pdagent_batch

__all__ = ["Fig12Result", "run_fig12", "main"]

DEFAULT_NS = tuple(range(1, 11))


@dataclass
class Fig12Result:
    """The three series of Figure 12."""

    ns: list[int]
    pdagent: list[float] = field(default_factory=list)
    client_server: list[float] = field(default_factory=list)
    web_based: list[float] = field(default_factory=list)

    def rows(self) -> list[list]:
        return [
            [n, p, c, w]
            for n, p, c, w in zip(self.ns, self.pdagent, self.client_server, self.web_based)
        ]

    def to_csv(self) -> str:
        """CSV form of the figure (full precision, for plotting)."""
        from .report import to_csv

        return to_csv(
            ["n_transactions", "pdagent_s", "client_server_s", "web_based_s"],
            self.rows(),
        )

    def render(self) -> str:
        table = format_table(
            ["#txns", "PDAgent (s)", "Client-Server (s)", "Web-based (s)"],
            self.rows(),
            title="Figure 12: Internet connection time vs number of transactions",
        )
        lines = [
            table,
            "",
            format_series("PDAgent", self.ns, self.pdagent),
            format_series("Client-Server", self.ns, self.client_server),
            format_series("Web-based", self.ns, self.web_based),
        ]
        return "\n".join(lines)


def run_fig12(
    seed: int = 0,
    ns: tuple[int, ...] = DEFAULT_NS,
    collector: Optional[TraceCollector] = None,
) -> Fig12Result:
    """Regenerate Figure 12's three series.

    Every (approach, n) cell runs in a fresh scenario seeded from ``seed``
    so the ledger only contains that cell's traffic.  With a ``collector``,
    each cell's full telemetry is captured under a ``fig12/<approach>/n=<n>``
    run label.
    """
    result = Fig12Result(ns=list(ns))
    for n in ns:
        # --- PDAgent ---------------------------------------------------------
        scenario = build_scenario(seed=seed)
        metrics = run_pdagent_batch(scenario, n)
        result.pdagent.append(metrics.connection_time)
        if collector is not None:
            collector.add_run(f"fig12/pdagent/n={n}", scenario.network)
        # --- client-server ---------------------------------------------------
        scenario = build_scenario(seed=seed)
        runner = scenario.client_server_runner()
        proc = scenario.sim.process(runner.run(scenario.transactions(n)))
        cs = scenario.sim.run(until=proc)
        result.client_server.append(cs.connection_time)
        if collector is not None:
            collector.add_run(f"fig12/client-server/n={n}", scenario.network)
        # --- web-based --------------------------------------------------------
        scenario = build_scenario(seed=seed)
        runner = scenario.web_based_runner()
        proc = scenario.sim.process(runner.run(scenario.transactions(n)))
        wb = scenario.sim.run(until=proc)
        result.web_based.append(wb.connection_time)
        if collector is not None:
            collector.add_run(f"fig12/web-based/n={n}", scenario.network)
    return result


def main(
    seed: int = 0,
    ns: tuple[int, ...] = DEFAULT_NS,
    collector: Optional[TraceCollector] = None,
) -> Fig12Result:
    result = run_fig12(seed=seed, ns=ns, collector=collector)
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
