"""Shared pieces of the comparison approaches (§2, Fig. 1).

Every baseline runs the *same* e-banking workload against the *same* bank
backends on the *same* simulated network as PDAgent, so the measured
differences come from the interaction model alone.

:class:`BankWebServer` is the HTTP front a bank exposes for the
client-server and web-based approaches.  It charges the same per-transaction
backend think time as the bank's MAS service agent
(:data:`repro.apps.ebanking.BANK_THINK_TIME`), plus page-rendering costs for
browser-style access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from ..simnet.http import HttpRequest, HttpResponse, HttpServer
from ..xmlcodec import Element, parse_bytes, write_bytes

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.node import Node

__all__ = [
    "BankWebServer",
    "BaselineRunResult",
    "TXN_FORM_BYTES",
    "TXN_RESPONSE_BYTES",
    "PAGE_BYTES",
    "PAGES_PER_TXN",
    "PAGE_RENDER_TIME",
    "BANK_WEB_PORT",
]

BANK_WEB_PORT = 8000

#: Bytes of an uploaded transaction form (client-server approach).
TXN_FORM_BYTES = 1536
#: Bytes of a transaction response document.
TXN_RESPONSE_BYTES = 4096
#: Bytes of one rendered banking web page (2004-era dynamic page + assets).
PAGE_BYTES = 56 * 1024
#: Page navigations a browser needs per transaction (account view → form →
#: validate → confirm → receipt).
PAGES_PER_TXN = 5
#: Server-side page generation time (nominal seconds, server class).
PAGE_RENDER_TIME = 0.45


@dataclass
class BaselineRunResult:
    """Uniform measurement record produced by every approach runner."""

    approach: str
    n_transactions: int
    completion_time: float
    connection_time: float
    connections: int
    bytes_sent: int
    bytes_received: int
    details: list[dict[str, Any]] = field(default_factory=list)


class BankWebServer:
    """A bank site's web front for the non-agent approaches.

    Routes
    ------
    ``POST /txn``  — execute one transaction (XML body); used by the
                     client-server approach.
    ``GET /form``  — fetch one lightweight transaction form (WAP-era sized);
                     the client-server flow's preliminary round trips.
    ``GET /page``  — fetch one rendered banking page; used by the
                     web-based approach (the transaction itself executes on
                     the final page of each :data:`PAGES_PER_TXN` sequence).
    """

    def __init__(
        self,
        node: "Node",
        think_time: float,
        port: int = BANK_WEB_PORT,
    ) -> None:
        self.node = node
        self.think_time = think_time
        self.transactions_processed = 0
        self.pages_served = 0
        self.http = HttpServer(node, port=port, service_time=0.004)
        self.http.route("/txn", self._handle_txn)
        self.http.route("/form", self._handle_form)
        self.http.route("/page", self._handle_page)

    def _handle_txn(self, req: HttpRequest) -> Generator:
        try:
            doc = parse_bytes(req.body)
            txn_id = doc.require("id")
            amount = float(doc.require("amount"))
        except Exception as exc:
            return HttpResponse(400, reason=str(exc))
            yield  # pragma: no cover - keeps the handler a generator
        yield self.node.compute(self.think_time)
        self.transactions_processed += 1
        reply = Element("txnresult", {"id": txn_id, "status": "ok"})
        reply.add("bank", text=self.node.address)
        reply.add("amount", text=str(amount))
        body = write_bytes(reply)
        # Pad the response to a realistic document size.
        pad = max(0, TXN_RESPONSE_BYTES - len(body))
        return HttpResponse(200, body=body, body_size=len(body) + pad)

    def _handle_form(self, req: HttpRequest) -> Generator:
        yield self.node.compute(0.05)  # lightweight form generation
        self.pages_served += 1
        return HttpResponse(200, body=b"<form/>", body_size=TXN_RESPONSE_BYTES)

    def _handle_page(self, req: HttpRequest) -> Generator:
        yield self.node.compute(PAGE_RENDER_TIME)
        if req.headers.get("step") == "final":
            # The last page of a transaction's sequence commits it.
            yield self.node.compute(self.think_time)
            self.transactions_processed += 1
        self.pages_served += 1
        return HttpResponse(200, body=b"<html/>", body_size=PAGE_BYTES)
