"""The Client-Server approach (§2, Fig. 1 left).

"A mobile client communicates with the web-server to invoke Internet
services.  In this approach, the mobile user has to keep the connection with
the wired network until the service is completed and the result is
obtained."

The runner opens one connection per bank (session semantics) and keeps it
open while every transaction targeted at that bank is submitted and answered
in sequence — so *connection time ≈ completion time* and both grow linearly
in the number of transactions, amplified by every wireless latency sample
along the way.  That is exactly the behaviour Figs. 12/13a show.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..simnet.http import HttpRequest, HttpResponse
from ..simnet.transport import connect
from ..xmlcodec import Element, parse_bytes, write_bytes
from .common import BANK_WEB_PORT, TXN_FORM_BYTES, BaselineRunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device

__all__ = ["ClientServerRunner"]

#: Offline form-filling time per transaction (nominal seconds; same for all
#: approaches — the paper assumes "the time for submitting a transaction is
#: the same for every single trial").
SUBMIT_TIME_PER_TXN = 0.02

#: Round trips per transaction while connected: fetch the transaction form,
#: submit it, confirm the result — typical 2004 online-banking flows.
EXCHANGES_PER_TXN = 3


class ClientServerRunner:
    """Runs a transaction batch in the classic client-server style."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.network = device.network

    def run(self, transactions: list[dict[str, Any]]) -> Generator:
        """Process: execute the batch; returns a :class:`BaselineRunResult`.

        Transactions are grouped by bank; the device stays connected to each
        bank's web server for that bank's whole share of the batch.
        """
        sim = self.network.sim
        tracer = self.network.tracer
        t0 = sim.now
        # Offline preparation (identical across approaches).
        yield self.device.compute(SUBMIT_TIME_PER_TXN * len(transactions))
        details: list[dict[str, Any]] = []
        banks: list[str] = []
        for txn in transactions:
            if txn["bank"] not in banks:
                banks.append(txn["bank"])
        for bank in banks:
            sock = yield from connect(
                self.network,
                self.device.address,
                bank,
                BANK_WEB_PORT,
                purpose="client-server-session",
            )
            try:
                for txn in transactions:
                    if txn["bank"] != bank:
                        continue
                    # Preliminary exchanges of the flow (form fetch,
                    # validation) — full round trips over the wireless link,
                    # answered as pages without committing the transaction.
                    for _ in range(EXCHANGES_PER_TXN - 1):
                        form_req = HttpRequest(
                            method="GET",
                            path="/form",
                            client=self.device.address,
                        )
                        yield from sock.send(form_req, form_req.wire_size)
                        yield from sock.recv()
                    doc = Element(
                        "txn",
                        {
                            "id": str(txn.get("txn_id", "")),
                            "amount": str(txn.get("amount", 0)),
                        },
                    )
                    body = write_bytes(doc)
                    req = HttpRequest(
                        method="POST",
                        path="/txn",
                        body=body,
                        body_size=len(body) + TXN_FORM_BYTES,
                        client=self.device.address,
                    )
                    yield from sock.send(req, req.wire_size)
                    message = yield from sock.recv()
                    resp: HttpResponse = message.payload
                    if not resp.ok:
                        details.append({"txn_id": txn.get("txn_id"), "status": "error"})
                        continue
                    reply = parse_bytes(resp.body)
                    details.append(
                        {
                            "txn_id": reply.get("id"),
                            "status": reply.get("status"),
                            "bank": reply.findtext("bank"),
                        }
                    )
            finally:
                sock.close()
        completion = sim.now - t0
        sent, received = tracer.bytes_transferred(self.device.address, since=t0)
        return BaselineRunResult(
            approach="client-server",
            n_transactions=len(transactions),
            completion_time=completion,
            connection_time=tracer.connection_time(self.device.address, since=t0),
            connections=tracer.connection_count(self.device.address, since=t0),
            bytes_sent=sent,
            bytes_received=received,
            details=details,
        )
