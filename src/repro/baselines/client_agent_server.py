"""The Client-Agent-Server approach (§2, Fig. 1 middle).

"The mobile user only needs to submit the service request to the server and
can then disconnect … The agent server will determine and launch a mobile
agent to execute the requested network services … This approach has a
limitation that a mobile user is provided with only MA-based applications
which must have been installed on the agent server."

The :class:`AgentServer` is a combined web + MA server with a *fixed* menu
of pre-installed applications — no code travels from the device, only
parameters.  Connection-wise it behaves like PDAgent (submit, disconnect,
collect), which is why the paper's figures only plot PDAgent against the two
always-connected approaches; this baseline exists for the flexibility
comparison and the related-work example.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..mas import Itinerary, MobileAgentServer, Stop
from ..mas.serializer import value_from_xml, value_to_xml
from ..simnet.http import HttpRequest, HttpResponse, HttpServer, request
from ..simnet.primitives import Event
from ..xmlcodec import Element, parse_bytes, write_bytes
from .common import BaselineRunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device
    from ..simnet.topology import Network

__all__ = ["AgentServer", "InstalledApp", "ClientAgentServerRunner", "AGENT_SERVER_PORT"]

AGENT_SERVER_PORT = 8800


@dataclass(frozen=True)
class InstalledApp:
    """A pre-installed MA application on the agent server."""

    service: str
    agent_class: str
    #: Builds the itinerary for a request (the *server* decides the route —
    #: the user cannot customise it, unlike PDAgent's downloadable code).
    itinerary_builder: Callable[[dict[str, Any], str], list[Stop]]


class AgentServer:
    """Combined web server + mobile agent server with installed apps."""

    def __init__(self, network: "Network", address: str, mas: MobileAgentServer) -> None:
        self.network = network
        self.node = network.node(address)
        self.mas = mas
        self._apps: dict[str, InstalledApp] = {}
        self._tickets: dict[str, dict[str, Any]] = {}
        self._counter = itertools.count(1)
        self.http = HttpServer(self.node, port=AGENT_SERVER_PORT, service_time=0.006)
        self.http.route("/request", self._handle_request)
        self.http.route("/result/", self._handle_result)

    @property
    def address(self) -> str:
        return self.node.address

    def install(self, app: InstalledApp) -> None:
        """Pre-install an application (deployment-time operation)."""
        if app.service in self._apps:
            raise ValueError(f"app {app.service!r} already installed")
        self._apps[app.service] = app

    def installed_services(self) -> list[str]:
        return sorted(self._apps)

    def completion_of(self, ticket: str) -> Event:
        return self._tickets[ticket]["event"]

    def _handle_request(self, req: HttpRequest) -> Generator:
        try:
            doc = parse_bytes(req.body)
            service = doc.require("service")
            params = value_from_xml(doc.require_child("params"))
        except Exception as exc:
            return HttpResponse(400, reason=str(exc))
            yield  # pragma: no cover - keeps the handler a generator
        app = self._apps.get(service)
        if app is None:
            # The defining limitation: unknown services cannot be served.
            return HttpResponse(
                404, reason=f"service {service!r} is not installed on this agent server"
            )
        stops = app.itinerary_builder(params, self.address)
        agent = self.mas.create_agent(
            app.agent_class,
            owner=req.client or "anonymous",
            itinerary=Itinerary(origin=self.address, stops=stops),
            state={"params": params, "results": []},
        )
        ticket = f"{self.address}/cas-{next(self._counter)}"
        record: dict[str, Any] = {"agent_id": agent.agent_id, "event": Event(self.network.sim)}
        self._tickets[ticket] = record
        self.network.sim.process(self._await(ticket), name=f"cas-await:{ticket}")
        reply = Element("accepted")
        reply.add("ticket", text=ticket)
        reply.add("agent", text=agent.agent_id)
        body = write_bytes(reply)
        return HttpResponse(200, body=body, body_size=len(body))

    def _await(self, ticket: str) -> Generator:
        record = self._tickets[ticket]
        result = yield self.mas.completion_event(record["agent_id"])
        record["result"] = result
        if not record["event"].triggered:
            record["event"].succeed(result)

    def _handle_result(self, req: HttpRequest) -> HttpResponse:
        ticket = req.path[len("/result/") :]
        record = self._tickets.get(ticket)
        if record is None:
            return HttpResponse(404, reason=f"unknown ticket {ticket!r}")
        if "result" not in record:
            return HttpResponse(204, reason="result not ready")
        doc = Element("result", {"ticket": ticket, "status": "completed"})
        doc.append(value_to_xml(record["result"], "data"))
        body = write_bytes(doc)
        return HttpResponse(200, body=body, body_size=len(body))


class ClientAgentServerRunner:
    """Device-side driver for the client-agent-server approach."""

    def __init__(self, device: "Device", server_address: str) -> None:
        self.device = device
        self.network = device.network
        self.server_address = server_address

    def submit(self, service: str, params: dict[str, Any]) -> Generator:
        """Process: upload the request; returns the ticket id."""
        doc = Element("request", {"service": service})
        doc.append(value_to_xml(params, "params"))
        body = write_bytes(doc)
        resp = yield from request(
            self.network,
            self.device.address,
            self.server_address,
            "POST",
            "/request",
            body=body,
            body_size=len(body),
            port=AGENT_SERVER_PORT,
            purpose="cas-submit",
        )
        return parse_bytes(resp.body).require_child("ticket").text

    def collect(self, ticket: str) -> Generator:
        """Process: one result-download attempt; returns the data or None."""
        resp = yield from request(
            self.network,
            self.device.address,
            self.server_address,
            "GET",
            f"/result/{ticket}",
            port=AGENT_SERVER_PORT,
            purpose="cas-collect",
            raise_for_status=False,
        )
        if resp.status == 204:
            return None
        if not resp.ok:
            raise RuntimeError(f"collect failed: {resp.status} {resp.reason}")
        doc = parse_bytes(resp.body)
        return value_from_xml(doc.require_child("data"))

    def run(
        self,
        service: str,
        params: dict[str, Any],
        completion_event: Optional[Event] = None,
    ) -> Generator:
        """Process: submit → (offline) → collect; returns BaselineRunResult.

        ``completion_event`` is the experiment's omniscient "the user comes
        back later" signal; without it the runner polls every 5 s.
        """
        sim = self.network.sim
        tracer = self.network.tracer
        t0 = sim.now
        ticket = yield from self.submit(service, params)
        if completion_event is not None:
            yield completion_event
            data = yield from self.collect(ticket)
        else:
            data = None
            while data is None:
                yield sim.timeout(5.0)
                data = yield from self.collect(ticket)
        completion = sim.now - t0
        sent, received = tracer.bytes_transferred(self.device.address, since=t0)
        txns = params.get("transactions", []) if isinstance(params, dict) else []
        return BaselineRunResult(
            approach="client-agent-server",
            n_transactions=len(txns),
            completion_time=completion,
            connection_time=tracer.connection_time(self.device.address, since=t0),
            connections=tracer.connection_count(self.device.address, since=t0),
            bytes_sent=sent,
            bytes_received=received,
            details=[{"ticket": ticket, "data": data}],
        )
