"""Comparison approaches from the paper's §2 (Fig. 1) and §4 evaluation.

* :class:`ClientServerRunner` — mobile client keeps a session open to each
  bank's web server for the whole batch;
* :class:`WebBasedRunner` — browser on a high-end desktop, one connection
  per page, several pages per transaction;
* :class:`AgentServer` / :class:`ClientAgentServerRunner` — the middle-tier
  agent server with pre-installed applications.

All runners produce :class:`BaselineRunResult` records measured by the same
connection ledger as PDAgent.
"""

from .client_agent_server import (
    AGENT_SERVER_PORT,
    AgentServer,
    ClientAgentServerRunner,
    InstalledApp,
)
from .client_server import ClientServerRunner
from .common import (
    BANK_WEB_PORT,
    PAGE_BYTES,
    PAGES_PER_TXN,
    TXN_FORM_BYTES,
    TXN_RESPONSE_BYTES,
    BankWebServer,
    BaselineRunResult,
)
from .web_based import WebBasedRunner

__all__ = [
    "BankWebServer",
    "BaselineRunResult",
    "ClientServerRunner",
    "WebBasedRunner",
    "AgentServer",
    "InstalledApp",
    "ClientAgentServerRunner",
    "BANK_WEB_PORT",
    "AGENT_SERVER_PORT",
    "TXN_FORM_BYTES",
    "TXN_RESPONSE_BYTES",
    "PAGE_BYTES",
    "PAGES_PER_TXN",
]
