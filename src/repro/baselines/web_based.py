"""The Web-based approach (§4): a browser on a high-end desktop.

"Performance is evaluated by … comparing … with a web-based approach —
accessing Internet services through a web browser on a high-end desktop."

A browser-era transaction is a *sequence of page navigations* (form →
validation → confirmation → receipt); each page is a fresh HTTP/1.0
connection fetching a heavy dynamic page.  The desktop's wired link is fast,
but the user is online for the whole session and per-page server rendering
adds up — so connection time still grows linearly in the number of
transactions (Fig. 12's middle curve).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..simnet.http import request
from .common import BANK_WEB_PORT, PAGES_PER_TXN, BaselineRunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..device import Device

__all__ = ["WebBasedRunner"]

#: Human/browser time between page navigations (form filling, rendering).
PAGE_TURN_TIME = 0.15
#: Pages of the per-bank login sequence (landing page + credentials).
LOGIN_PAGES = 2


class WebBasedRunner:
    """Runs a transaction batch through browser-style page sequences."""

    def __init__(self, device: "Device", pages_per_txn: int = PAGES_PER_TXN) -> None:
        if pages_per_txn < 1:
            raise ValueError("pages_per_txn must be >= 1")
        self.device = device
        self.network = device.network
        self.pages_per_txn = pages_per_txn

    def run(self, transactions: list[dict[str, Any]]) -> Generator:
        """Process: execute the batch; returns a :class:`BaselineRunResult`."""
        sim = self.network.sim
        tracer = self.network.tracer
        t0 = sim.now
        details: list[dict[str, Any]] = []
        logged_in: set[str] = set()
        for txn in transactions:
            bank = txn["bank"]
            if bank not in logged_in:
                # Per-bank login sequence before any transaction pages.
                for _ in range(LOGIN_PAGES):
                    yield self.device.compute(PAGE_TURN_TIME)
                    yield from request(
                        self.network,
                        self.device.address,
                        bank,
                        "GET",
                        "/page",
                        port=BANK_WEB_PORT,
                        purpose="web-login",
                    )
                logged_in.add(bank)
            for step in range(self.pages_per_txn):
                is_final = step == self.pages_per_txn - 1
                yield self.device.compute(PAGE_TURN_TIME)
                resp = yield from request(
                    self.network,
                    self.device.address,
                    bank,
                    "GET",
                    "/page",
                    port=BANK_WEB_PORT,
                    purpose="web-page",
                    headers={"step": "final"} if is_final else {},
                )
                if is_final:
                    details.append(
                        {
                            "txn_id": txn.get("txn_id"),
                            "status": "ok" if resp.ok else "error",
                            "bank": bank,
                        }
                    )
        completion = sim.now - t0
        sent, received = tracer.bytes_transferred(self.device.address, since=t0)
        return BaselineRunResult(
            approach="web-based",
            n_transactions=len(transactions),
            completion_time=completion,
            connection_time=tracer.connection_time(self.device.address, since=t0),
            connections=tracer.connection_count(self.device.address, since=t0),
            bytes_sent=sent,
            bytes_received=received,
            details=details,
        )
