"""MAS portability layer: wire formats and the gateway-side adapter.

The paper's headline portability claim is that PDAgent "supports the
adoption of any kind of mobile agent system at network hosts".  The gateway
therefore never touches a concrete agent runtime; it programs against
:class:`MASAdapter`.  Two concrete deployment flavours are provided, styled
after the systems the paper names (§3.6: "Aglets, Voyager etc."):

* :class:`AgletsWireFormat` — compact binary-ish transfers (LZSS-compressed
  XML), small per-hop overhead, like Aglets' Java serialisation stream;
* :class:`VoyagerWireFormat` — verbose self-describing XML inside an extra
  RPC envelope, larger per-hop overhead, like Voyager's ORB-flavoured
  remoting.

Both carry the *same* canonical agent document from
:mod:`repro.mas.serializer`, so a deployment can be switched wholesale by
constructing its servers with the other flavour — which is exactly what the
adapter-portability ablation (bench A4) does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Protocol

from ..compressor import compress, decompress
from ..telemetry.spans import SpanContext
from ..xmlcodec import Element, parse_bytes, write_bytes
from .errors import MigrationError
from .itinerary import Itinerary
from .serializer import AgentSnapshot, deserialize_agent, serialize_agent

if TYPE_CHECKING:  # pragma: no cover
    from .agent import MobileAgent
    from .server import MobileAgentServer

__all__ = [
    "WireFormat",
    "AgletsWireFormat",
    "VoyagerWireFormat",
    "MASAdapter",
    "LocalServerAdapter",
    "wire_format_by_name",
]


class WireFormat(Protocol):
    """How a deployment's servers put travelling agents on the wire."""

    name: str
    #: Extra bytes per hop (protocol headers, class manifests, etc.).
    per_hop_overhead: int
    #: Nominal CPU seconds to encode / decode one agent (charged on the
    #: sending / receiving host, scaled by its cpu factor).
    encode_cost_s: float
    decode_cost_s: float

    def encode(self, agent: "MobileAgent") -> bytes: ...  # pragma: no cover

    def decode(self, data: bytes) -> AgentSnapshot: ...  # pragma: no cover


class AgletsWireFormat:
    """Compact transfers: canonical agent XML, LZSS-compressed."""

    name = "aglets"
    per_hop_overhead = 96
    encode_cost_s = 0.004
    decode_cost_s = 0.003

    def encode(self, agent: "MobileAgent") -> bytes:
        return compress(serialize_agent(agent), "lzss")

    def snapshot(self, agent: "MobileAgent") -> bytes:
        """Local checkpoint form: framed but uncompressed.

        Checkpoints stored at the agent's home never cross a link, so they
        skip the LZSS pass (the dominant CPU cost of :meth:`encode`); the
        null-codec frame is self-describing, so :meth:`decode` reads both
        forms interchangeably.
        """
        return compress(serialize_agent(agent), "null")

    def decode(self, data: bytes) -> AgentSnapshot:
        try:
            return deserialize_agent(decompress(data))
        except MigrationError:
            raise
        except Exception as exc:
            raise MigrationError(f"bad aglets wire form: {exc}") from exc


class VoyagerWireFormat:
    """Verbose transfers: uncompressed XML inside an RPC envelope."""

    name = "voyager"
    per_hop_overhead = 420
    encode_cost_s = 0.002
    decode_cost_s = 0.002

    def encode(self, agent: "MobileAgent") -> bytes:
        body = serialize_agent(agent)
        envelope = Element("rpc", {"system": "voyager", "op": "moveTo"})
        envelope.add("meta", {"class": agent.class_name, "id": agent.agent_id})
        envelope.add("payload", {"encoding": "hex"}, text=body.hex())
        return write_bytes(envelope)

    def decode(self, data: bytes) -> AgentSnapshot:
        try:
            envelope = parse_bytes(data)
            if envelope.tag != "rpc" or envelope.get("system") != "voyager":
                raise ValueError("not a voyager RPC envelope")
            payload = envelope.require_child("payload")
            return deserialize_agent(bytes.fromhex(payload.text))
        except MigrationError:
            raise
        except Exception as exc:
            raise MigrationError(f"bad voyager wire form: {exc}") from exc


_WIRE_FORMATS = {"aglets": AgletsWireFormat, "voyager": VoyagerWireFormat}


def wire_format_by_name(name: str) -> WireFormat:
    """Instantiate a wire format flavour by name."""
    try:
        return _WIRE_FORMATS[name]()
    except KeyError:
        raise KeyError(
            f"unknown wire format {name!r}; have {sorted(_WIRE_FORMATS)}"
        ) from None


class MASAdapter(Protocol):
    """What the gateway needs from *any* mobile agent system.

    Every method that does work returns a generator process (the gateway's
    handlers ``yield from`` them).
    """

    def deploy(
        self,
        class_name: str,
        owner: str,
        itinerary: Itinerary,
        state: dict[str, Any],
        trace: Optional[SpanContext] = None,
    ) -> Generator: ...  # pragma: no cover - protocol

    def wait_completion(self, agent_id: str): ...  # pragma: no cover

    def result_of(self, agent_id: str) -> Any: ...  # pragma: no cover

    def retract(self, agent_id: str) -> Generator: ...  # pragma: no cover

    def status(self, agent_id: str) -> Generator: ...  # pragma: no cover

    def clone(self, agent_id: str) -> Generator: ...  # pragma: no cover

    def dispose(self, agent_id: str) -> Generator: ...  # pragma: no cover

    def supports(self, class_name: str) -> bool: ...  # pragma: no cover


class LocalServerAdapter:
    """Adapter over a :class:`MobileAgentServer` co-located with the gateway.

    This is the deployment in the paper's Fig. 4 (MAS inside the gateway
    host); the adapter boundary still isolates the gateway from the server
    API so a remote-MAS adapter could be dropped in instead.
    """

    def __init__(self, server: "MobileAgentServer") -> None:
        self.server = server

    @property
    def name(self) -> str:
        return f"local:{self.server.wire_format.name}@{self.server.address}"

    def supports(self, class_name: str) -> bool:
        return class_name in self.server.registry

    def deploy(
        self,
        class_name: str,
        owner: str,
        itinerary: Itinerary,
        state: dict[str, Any],
        trace: Optional[SpanContext] = None,
    ) -> Generator:
        """Process: create + autostart the agent; returns its id.

        Gateway-dispatched agents travel under a home-side guardian: if a
        tour site crashes with the agent aboard, the guardian re-dispatches
        it from its latest checkpoint instead of leaving the user's ticket
        to the watchdog.
        """
        agent = self.server.create_agent(
            class_name, owner=owner, itinerary=itinerary, state=state,
            guardian=True, trace=trace,
        )
        yield self.server.sim.timeout(0.0)  # creation is immediate, keep shape
        return agent.agent_id

    def wait_completion(self, agent_id: str):
        return self.server.completion_event(agent_id)

    def hop_progress(self, agent_id: str) -> Optional[tuple[int, int]]:
        """Optional adapter hook: ``(visited, remaining)`` hop counts.

        The gateway probes this (via ``getattr``) to annotate "result not
        ready" answers with itinerary progress; remote-MAS adapters may
        simply not provide it.
        """
        return self.server.hop_progress_of(agent_id)

    def result_of(self, agent_id: str) -> Any:
        return self.server.result_of(agent_id)

    def retract(self, agent_id: str) -> Generator:
        agent = yield from self.server.retract_agent(agent_id)
        return agent.agent_id

    def status(self, agent_id: str) -> Generator:
        state = yield from self.server.query_status(agent_id)
        return state

    def clone(self, agent_id: str) -> Generator:
        clone_id = yield from self.server.clone_anywhere(agent_id)
        return clone_id

    def dispose(self, agent_id: str) -> Generator:
        self.server.dispose_agent(agent_id)
        yield self.server.sim.timeout(0.0)
        return True
