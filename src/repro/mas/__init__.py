"""Mobile agent system substrate (IBM Aglets substitute).

A complete agent runtime built on :mod:`repro.simnet`:

* :class:`MobileAgent` + :class:`AgentContext` — behaviour model with
  migration (`move_to`), completion, disposal, service queries, messaging;
* :class:`MobileAgentServer` — per-site runtime speaking an agent transfer
  protocol, with home-based location tracking, retraction, cloning;
* :class:`Itinerary` — multi-hop travel plans;
* :mod:`~repro.mas.serializer` — the XML travelling form (code + state);
* :mod:`~repro.mas.adapters` — wire-format flavours (Aglets-style /
  Voyager-style) and the gateway-facing :class:`MASAdapter` boundary.
"""

from .agent import AgentContext, MobileAgent
from .adapters import (
    AgletsWireFormat,
    LocalServerAdapter,
    MASAdapter,
    VoyagerWireFormat,
    WireFormat,
    wire_format_by_name,
)
from .errors import (
    AgentBusyError,
    AgentError,
    AgentLifecycleError,
    MigrationError,
    UnknownAgentError,
    UnknownClassError,
)
from .itinerary import Itinerary, Stop
from .messaging import AgentMessage, ServiceAgent
from .serializer import (
    AgentSnapshot,
    deserialize_agent,
    serialize_agent,
    state_from_xml,
    state_to_xml,
    value_from_xml,
    value_to_xml,
)
from .server import MAS_PORT, AgentClassRegistry, MobileAgentServer
from .state import AgentState, CompleteSignal, DisposeSignal, MigrationSignal

__all__ = [
    "MobileAgent",
    "AgentContext",
    "MobileAgentServer",
    "AgentClassRegistry",
    "MAS_PORT",
    "Itinerary",
    "Stop",
    "AgentMessage",
    "ServiceAgent",
    "AgentState",
    "MigrationSignal",
    "DisposeSignal",
    "CompleteSignal",
    "AgentSnapshot",
    "serialize_agent",
    "deserialize_agent",
    "value_to_xml",
    "value_from_xml",
    "state_to_xml",
    "state_from_xml",
    "WireFormat",
    "AgletsWireFormat",
    "VoyagerWireFormat",
    "MASAdapter",
    "LocalServerAdapter",
    "wire_format_by_name",
    "AgentError",
    "UnknownAgentError",
    "UnknownClassError",
    "AgentBusyError",
    "MigrationError",
    "AgentLifecycleError",
]
