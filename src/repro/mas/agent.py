"""Mobile agents and their execution context.

:class:`MobileAgent` is the behaviour base class (Aglets' ``Aglet``).
Subclasses override the generator hooks:

* :meth:`~MobileAgent.on_arrival` — runs at every host the agent lands on
  (including creation at its home server).  The agent performs local work by
  yielding events obtained through the :class:`AgentContext`, then typically
  ends by ``ctx.move_to(...)``, ``ctx.complete(result)`` or
  ``ctx.dispose()``.
* :meth:`~MobileAgent.on_message` — runs for each message delivered while
  the agent is resident and idle.

All durable data must live in ``self.state`` (a plain dict) — that is what
travels.  Instance attributes set outside ``state`` do **not** migrate,
exactly like transient fields in Java serialisation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .itinerary import Itinerary, Stop
from .state import AgentState, CompleteSignal, DisposeSignal, MigrationSignal

if TYPE_CHECKING:  # pragma: no cover
    from .messaging import AgentMessage
    from .server import MobileAgentServer

__all__ = ["MobileAgent", "AgentContext"]

#: Default nominal code size (bytes) if a subclass does not override it —
#: middle of the paper's observed 1–8 KB range.
DEFAULT_CODE_SIZE = 4096


class MobileAgent:
    """Base class for travelling agents.

    Parameters
    ----------
    agent_id:
        Globally unique id (assigned by the creating server).
    owner:
        Identity of the dispatching principal (device id / user).
    home:
        Address of the server the agent reports to and returns to.
    itinerary:
        Travel plan; may be empty for stationary agents.
    state:
        Initial state dict (travels with the agent).
    """

    #: Nominal size of the agent's class files on the wire (subclasses set
    #: this to model heavier/lighter applications).
    code_size: int = DEFAULT_CODE_SIZE

    #: Telemetry correlation (:class:`~repro.telemetry.spans.SpanContext`
    #: or ``None``): the span the agent's next activity should parent
    #: under.  Travels in the wire form and is re-pointed by the hosting
    #: server as the agent runs and migrates, chaining hop spans causally.
    trace_ctx = None

    def __init__(
        self,
        agent_id: str,
        owner: str,
        home: str,
        itinerary: Optional[Itinerary] = None,
        state: Optional[dict[str, Any]] = None,
    ) -> None:
        self.agent_id = agent_id
        self.owner = owner
        self.home = home
        self.itinerary = itinerary or Itinerary(origin=home)
        self.state: dict[str, Any] = state if state is not None else {}
        self.lifecycle = AgentState.CREATED
        self.hops = 0

    @property
    def class_name(self) -> str:
        """Registry name of this agent's class."""
        return type(self).__name__

    # -- behaviour hooks (override in subclasses) -------------------------------
    def on_arrival(self, ctx: "AgentContext") -> Generator:
        """Behaviour executed on landing at a host.  Must be a generator."""
        yield ctx.idle()  # default: do nothing, stay resident

    def on_message(self, ctx: "AgentContext", message: "AgentMessage") -> Generator:
        """Behaviour executed per delivered message.  Must be a generator."""
        yield ctx.idle()

    # -- convenience -----------------------------------------------------------
    @property
    def is_home(self) -> bool:
        """True when the agent currently resides at its home server."""
        return self.lifecycle is not AgentState.MIGRATING and self._location_is_home

    _location_is_home: bool = True  # maintained by the hosting server

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{self.class_name} id={self.agent_id!r} "
            f"state={self.lifecycle.value} hops={self.hops}>"
        )


class AgentContext:
    """The agent's window onto its current host.

    Created by the hosting :class:`~repro.mas.server.MobileAgentServer` for
    each behaviour execution.  All methods that take simulated time return
    events/generators for the behaviour to ``yield`` / ``yield from``.
    """

    def __init__(self, server: "MobileAgentServer", agent: MobileAgent) -> None:
        self._server = server
        self._agent = agent

    # -- environment -----------------------------------------------------------
    @property
    def here(self) -> str:
        """Address of the current host."""
        return self._server.address

    @property
    def sim(self):
        return self._server.network.sim

    @property
    def agent(self) -> MobileAgent:
        return self._agent

    def log(self, message: str) -> None:
        """Record a trace line attributed to this agent."""
        self._server.network.tracer.count(f"agent_log:{self._agent.agent_id}")
        self._server.agent_logs.setdefault(self._agent.agent_id, []).append(
            (self.sim.now, self.here, message)
        )

    # -- time ------------------------------------------------------------------
    def sleep(self, seconds: float):
        """Event: simulated wall-clock delay."""
        return self.sim.timeout(seconds)

    def work(self, seconds: float):
        """Event: CPU work on the current host (scaled by its cpu factor)."""
        return self._server.node.compute(seconds)

    def idle(self):
        """Event: zero-time yield (keeps hook signatures generator-shaped)."""
        return self.sim.timeout(0.0)

    # -- control flow ------------------------------------------------------------
    def move_to(self, destination: str) -> None:
        """End execution here and migrate to ``destination`` (raises)."""
        raise MigrationSignal(destination)

    def follow_itinerary(self) -> None:
        """Move to the next itinerary stop, or home when exhausted (raises)."""
        stop = self._agent.itinerary.next_stop()
        if stop is None:
            raise MigrationSignal(self._agent.itinerary.origin)
        self._agent.itinerary.advance()
        raise MigrationSignal(stop.address)

    def return_home(self) -> None:
        """Migrate back to the agent's origin (raises)."""
        raise MigrationSignal(self._agent.itinerary.origin)

    def complete(self, result: Any) -> None:
        """Finish the task; the current server records ``result`` (raises)."""
        raise CompleteSignal(result)

    def dispose(self) -> None:
        """Self-destruct (raises)."""
        raise DisposeSignal()

    def extend_itinerary(self, address: str, task: str = "") -> None:
        """Append a stop — agents may re-plan from discovered context."""
        self._agent.itinerary.append(Stop(address, task))

    def report_partial(self, value: Any) -> None:
        """Report this hop's site result to the origin gateway (streaming).

        Fire-and-forget and free when the deployment has streaming
        sessions off; with them on, the home gateway appends ``value`` to
        the dispatching ticket's partial stream so the device's next
        session poll sees it — the first-hop answer in ~one RTT instead
        of a full tour later.
        """
        self._server.report_hop_result(self._agent, value)

    # -- communication ------------------------------------------------------------
    def ask_service(self, service_name: str, request: dict) -> Generator:
        """Process: query a stationary service agent on the *current* host.

        Local interaction — no network traffic, only the service's simulated
        processing time (this is the client-agent ↔ service-agent exchange
        of the e-banking evaluation).
        """
        return self._server.invoke_service(service_name, self._agent, request)

    def send_message(self, to_agent: str, subject: str, body: dict) -> Generator:
        """Process: deliver a message to another agent (possibly remote)."""
        return self._server.send_agent_message(
            self._agent.agent_id, to_agent, subject, body
        )

    def receive(self, subject: Optional[str] = None):
        """Event: next message addressed to this agent."""
        return self._server.mailbox_of(self._agent.agent_id).receive(subject)

    def services_here(self) -> list[str]:
        """Names of service agents registered on the current host."""
        return self._server.service_names()
