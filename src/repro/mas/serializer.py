"""Agent serialisation: typed XML state encoding and the agent wire format.

Two layers:

* :func:`value_to_xml` / :func:`value_from_xml` — a typed XML encoding of
  plain Python data (str/int/float/bool/None/bytes/list/dict).  This is the
  interoperable "standard MA code format … specified using XML" the paper
  advocates: any MAS adapter can read it.
* :func:`serialize_agent` / :func:`deserialize_agent` — the full travelling
  form of an agent: class name, identity, itinerary, and state dict, plus a
  synthetic code payload sized like the real class files (so transfer-time
  accounting reflects realistic agent sizes — the paper cites 1–8 KB).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..telemetry.spans import SpanContext
from ..xmlcodec import Element, parse_bytes, write_bytes
from .errors import MigrationError
from .itinerary import Itinerary

if TYPE_CHECKING:  # pragma: no cover
    from .agent import MobileAgent

__all__ = [
    "value_to_xml",
    "value_from_xml",
    "state_to_xml",
    "state_from_xml",
    "serialize_agent",
    "deserialize_agent",
    "AgentSnapshot",
]

_SCALARS = {
    str: "str",
    int: "int",
    float: "float",
    bool: "bool",
}


def value_to_xml(value: Any, tag: str = "value") -> Element:
    """Encode a Python value as a typed XML element."""
    elem = Element(tag)
    if value is None:
        elem.set("type", "none")
    elif isinstance(value, bool):  # bool before int: bool is an int subclass
        elem.set("type", "bool")
        elem.text = "true" if value else "false"
    elif isinstance(value, int):
        elem.set("type", "int")
        elem.text = repr(value)
    elif isinstance(value, float):
        elem.set("type", "float")
        elem.text = repr(value)
    elif isinstance(value, str):
        elem.set("type", "str")
        elem.text = value
    elif isinstance(value, (bytes, bytearray)):
        elem.set("type", "bytes")
        elem.text = bytes(value).hex()
    elif isinstance(value, (list, tuple)):
        elem.set("type", "list")
        for item in value:
            elem.append(value_to_xml(item, "item"))
    elif isinstance(value, dict):
        elem.set("type", "dict")
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"dict keys must be str, got {key!r}")
            entry = value_to_xml(item, "entry")
            entry.set("key", key)
            elem.append(entry)
    else:
        raise TypeError(f"cannot serialise {type(value).__name__}: {value!r}")
    return elem


def value_from_xml(elem: Element) -> Any:
    """Inverse of :func:`value_to_xml`."""
    kind = elem.require("type")
    if kind == "none":
        return None
    if kind == "bool":
        if elem.text not in ("true", "false"):
            raise ValueError(f"bad bool literal {elem.text!r}")
        return elem.text == "true"
    if kind == "int":
        return int(elem.text)
    if kind == "float":
        return float(elem.text)
    if kind == "str":
        return elem.text
    if kind == "bytes":
        return bytes.fromhex(elem.text)
    if kind == "list":
        return [value_from_xml(child) for child in elem]
    if kind == "dict":
        return {child.require("key"): value_from_xml(child) for child in elem}
    raise ValueError(f"unknown value type {kind!r}")


def state_to_xml(state: dict[str, Any], tag: str = "state") -> Element:
    """Encode an agent state dict."""
    if not isinstance(state, dict):
        raise TypeError("agent state must be a dict")
    elem = value_to_xml(state, tag)
    return elem


def state_from_xml(elem: Element) -> dict[str, Any]:
    value = value_from_xml(elem)
    if not isinstance(value, dict):
        raise ValueError("state element did not decode to a dict")
    return value


class AgentSnapshot:
    """A deserialised travelling agent, not yet re-instantiated.

    The hosting server turns a snapshot back into a live agent by looking up
    ``class_name`` in its class registry.
    """

    __slots__ = (
        "agent_id",
        "class_name",
        "owner",
        "home",
        "state",
        "itinerary",
        "hops",
        "code_size",
        "trace",
    )

    def __init__(
        self,
        agent_id: str,
        class_name: str,
        owner: str,
        home: str,
        state: dict[str, Any],
        itinerary: Itinerary,
        hops: int,
        code_size: int,
        trace: "SpanContext | None" = None,
    ) -> None:
        self.agent_id = agent_id
        self.class_name = class_name
        self.owner = owner
        self.home = home
        self.state = state
        self.itinerary = itinerary
        self.hops = hops
        self.code_size = code_size
        self.trace = trace


def serialize_agent(agent: "MobileAgent") -> bytes:
    """The agent's travelling wire form (XML bytes).

    The document embeds a ``<code>`` element whose declared ``size``
    inflates the wire size to the agent class's nominal code size —
    mobile-agent systems ship code with state, and the transfer cost must
    reflect that.
    """
    root = Element("agent", {"version": "1"})
    root.add("id", text=agent.agent_id)
    root.add("class", text=agent.class_name)
    root.add("owner", text=agent.owner)
    root.add("home", text=agent.home)
    root.add("hops", text=str(agent.hops))
    root.append(value_to_xml(agent.itinerary.to_dict(), "itinerary"))
    root.append(state_to_xml(agent.state))
    if agent.trace_ctx is not None:
        root.add(
            "trace", {"tid": agent.trace_ctx.trace_id, "sid": agent.trace_ctx.span_id}
        )
    code = root.add("code", {"size": str(agent.code_size)})
    # Synthetic payload standing in for class files: deterministic,
    # semi-compressible filler derived from the class name.
    filler_unit = (agent.class_name + ":bytecode;") or "x"
    reps = max(0, agent.code_size) // len(filler_unit) + 1
    code.text = (filler_unit * reps)[: agent.code_size]
    return write_bytes(root)


def deserialize_agent(data: bytes) -> AgentSnapshot:
    """Parse a travelling agent; raises MigrationError on damage."""
    try:
        root = parse_bytes(data)
        if root.tag != "agent":
            raise ValueError(f"root is <{root.tag}>, expected <agent>")
        itinerary = Itinerary.from_dict(
            value_from_xml(root.require_child("itinerary"))
        )
        code = root.require_child("code")
        trace_elem = root.find("trace")
        trace = (
            SpanContext(trace_elem.require("tid"), trace_elem.get("sid", ""))
            if trace_elem is not None
            else None
        )
        return AgentSnapshot(
            agent_id=root.require_child("id").text,
            class_name=root.require_child("class").text,
            owner=root.findtext("owner"),
            home=root.findtext("home"),
            state=state_from_xml(root.require_child("state")),
            itinerary=itinerary,
            hops=int(root.findtext("hops", "0")),
            code_size=int(code.require("size")),
            trace=trace,
        )
    except MigrationError:
        raise
    except Exception as exc:
        raise MigrationError(f"corrupt agent wire form: {exc}") from exc
