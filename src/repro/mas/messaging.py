"""Inter-agent messaging and stationary service agents.

Two communication patterns from the paper's e-banking scenario:

* A travelling client agent *locally* queries the resident **service agent**
  of the site it has landed on (``ServiceAgent.handle``) — this costs only
  the service's simulated processing time.
* Agents can also exchange :class:`AgentMessage` objects across servers; the
  hosting servers forward them over the wired network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from .server import MobileAgentServer

__all__ = ["AgentMessage", "ServiceAgent"]


@dataclass(frozen=True)
class AgentMessage:
    """A routed inter-agent message."""

    sender: str
    recipient: str
    subject: str
    body: dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0

    def wire_size(self) -> int:
        """Approximate encoded size for transfer-time accounting."""
        base = 64 + len(self.sender) + len(self.recipient) + len(self.subject)
        return base + _dict_size(self.body)


def _dict_size(value: Any) -> int:
    if isinstance(value, dict):
        return sum(len(k) + _dict_size(v) + 8 for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return sum(_dict_size(v) + 4 for v in value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    return 8


class ServiceAgent:
    """A stationary agent owned by a site, answering local queries.

    Subclasses override :meth:`handle` (a generator: it may ``yield`` events
    for simulated processing time) and return a reply dict.

    Parameters
    ----------
    name:
        Service name client agents address (e.g. ``"banking"``).
    processing_time:
        Default nominal CPU seconds charged per request.
    """

    def __init__(self, name: str, processing_time: float = 0.05) -> None:
        if not name:
            raise ValueError("service name must be non-empty")
        self.name = name
        self.processing_time = processing_time
        self.server: "MobileAgentServer | None" = None
        self.requests_served = 0

    def bind(self, server: "MobileAgentServer") -> None:
        """Attach to a hosting server (called by ``register_service``)."""
        self.server = server

    def handle(self, caller_id: str, request: dict) -> Generator:
        """Process one request; override in subclasses.

        The base implementation models fixed processing time and echoes.
        """
        if self.server is None:
            raise RuntimeError(f"service {self.name!r} is unbound")
        yield self.server.node.compute(self.processing_time)
        return {"status": "ok", "echo": request}

    def _serve(self, caller_id: str, request: dict) -> Generator:
        """Internal wrapper: accounting around :meth:`handle`."""
        self.requests_served += 1
        reply = yield from self.handle(caller_id, request)
        if not isinstance(reply, dict):
            raise TypeError(
                f"service {self.name!r} returned {type(reply).__name__}, expected dict"
            )
        return reply
