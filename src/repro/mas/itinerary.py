"""Agent itineraries: ordered travel plans across network sites.

An :class:`Itinerary` is the classic mobile-agent travel plan (Aglets'
``SeqItinerary``): an ordered list of stops, a cursor, and an origin to
return to.  It serialises to/from plain dicts so it travels inside the
agent's state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Stop", "Itinerary"]


@dataclass(frozen=True)
class Stop:
    """One itinerary entry: where to go and what task label applies there."""

    address: str
    task: str = ""

    def to_dict(self) -> dict:
        return {"address": self.address, "task": self.task}

    @staticmethod
    def from_dict(data: dict) -> "Stop":
        return Stop(address=str(data["address"]), task=str(data.get("task", "")))


@dataclass
class Itinerary:
    """An ordered multi-hop travel plan with a cursor.

    >>> it = Itinerary(origin="gw", stops=[Stop("bank-a"), Stop("bank-b")])
    >>> it.next_stop().address
    'bank-a'
    >>> it.advance(); it.next_stop().address
    'bank-b'
    >>> it.advance(); it.exhausted
    True
    """

    origin: str
    stops: list[Stop] = field(default_factory=list)
    cursor: int = 0

    def __post_init__(self) -> None:
        if not self.origin:
            raise ValueError("itinerary needs an origin")
        if not 0 <= self.cursor <= len(self.stops):
            raise ValueError(f"cursor {self.cursor} out of range")

    # -- navigation ------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True when every stop has been visited."""
        return self.cursor >= len(self.stops)

    def next_stop(self) -> Optional[Stop]:
        """The stop the agent should travel to next (None when exhausted)."""
        if self.exhausted:
            return None
        return self.stops[self.cursor]

    def advance(self) -> None:
        """Mark the current stop visited."""
        if self.exhausted:
            raise IndexError("itinerary already exhausted")
        self.cursor += 1

    def rewind(self, n: int = 1) -> None:
        """Move the cursor back ``n`` stops.

        Used by checkpoint re-dispatch under the "retry" site-failure
        policy: the re-landed agent visits the failed stop again instead
        of skipping its work.  Rewinding past the first visited stop is a
        caller bug (it would silently re-plan the whole tour), so ``n``
        must satisfy ``0 <= n <= cursor``.
        """
        if n < 0:
            raise ValueError(f"cannot rewind by {n!r}")
        if n > self.cursor:
            raise ValueError(
                f"cannot rewind {n} stop(s): only {self.cursor} visited"
            )
        self.cursor -= n

    def remaining(self) -> list[Stop]:
        return list(self.stops[self.cursor :])

    def visited(self) -> list[Stop]:
        return list(self.stops[: self.cursor])

    def append(self, stop: Stop) -> None:
        """Extend the plan (context-adaptive agents re-plan en route)."""
        self.stops.append(stop)

    def insert_next(self, stop: Stop) -> None:
        """Insert a stop to be visited immediately after the current one."""
        self.stops.insert(self.cursor, stop)

    # -- wire form ------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "origin": self.origin,
            "cursor": self.cursor,
            "stops": [s.to_dict() for s in self.stops],
        }

    @staticmethod
    def from_dict(data: dict) -> "Itinerary":
        return Itinerary(
            origin=str(data["origin"]),
            stops=[Stop.from_dict(s) for s in data.get("stops", [])],
            cursor=int(data.get("cursor", 0)),
        )
