"""The mobile agent server (Aglets-substitute runtime).

A :class:`MobileAgentServer` is installed on a network node ("a high-end
desktop in a network site").  It hosts resident agents and service agents,
executes agent behaviour as kernel processes, and speaks a small
Agent Transfer Protocol (ATP) to peer servers over the simulated transport:

========== ==========================================================
ATP type    semantics
========== ==========================================================
transfer    serialized agent → land, run behaviour, ack
retract     pull an idle/completed agent back to the requester
status      lifecycle query (home servers also answer from tracking)
message     inter-agent message delivery
completion  remote completion report routed to the agent's home
dispose     remote disposal request
========== ==========================================================

Agents report arrivals to their *home* server (datagram), so homes can
answer status queries and find agents for retraction — the mechanism behind
the paper's requirement that users can "administer the mobile agent server
to manage the mobile agent operations" from the handheld.

The on-the-wire encoding of a travelling agent is pluggable via a
*wire format* (see :mod:`repro.mas.adapters`), which is how the reproduction
models PDAgent's "any kind of mobile agent system" portability claim.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional, Type

from ..simnet.primitives import Event, InterruptException, Process
from ..simnet.resources import Mailbox
from ..simnet.topology import NoRouteError
from ..simnet.transport import ConnectionClosed, TransportError, connect
from .agent import AgentContext, MobileAgent
from .errors import (
    AgentBusyError,
    AgentLifecycleError,
    MigrationError,
    UnknownAgentError,
    UnknownClassError,
)
from .itinerary import Itinerary, Stop
from .messaging import AgentMessage, ServiceAgent
from .state import AgentState, CompleteSignal, DisposeSignal, MigrationSignal

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.topology import Network
    from ..telemetry.spans import SpanContext
    from .adapters import WireFormat

__all__ = ["MobileAgentServer", "AgentClassRegistry", "MAS_PORT"]

MAS_PORT = 4434
_RETRACT_RETRY_DELAY = 0.25
_RETRACT_MAX_TRIES = 40


class AgentClassRegistry:
    """Name → agent class mapping shared by the servers of a deployment.

    Plays the role of the code base every MAS host has installed: the
    travelling wire form names the class; the landing server instantiates
    it locally.
    """

    def __init__(self) -> None:
        self._classes: dict[str, Type[MobileAgent]] = {}

    def register(self, cls: Type[MobileAgent]) -> Type[MobileAgent]:
        """Register a class under its ``__name__`` (usable as a decorator)."""
        if not (isinstance(cls, type) and issubclass(cls, MobileAgent)):
            raise TypeError(f"{cls!r} is not a MobileAgent subclass")
        existing = self._classes.get(cls.__name__)
        if existing is not None and existing is not cls:
            raise ValueError(f"duplicate agent class name {cls.__name__!r}")
        self._classes[cls.__name__] = cls
        return cls

    def get(self, name: str) -> Type[MobileAgent]:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(
                f"agent class {name!r} not registered; have {sorted(self._classes)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes


class MobileAgentServer:
    """Agent runtime bound to one network node.

    Fault-tolerance knobs are class attributes so a deployment can tune
    them wholesale (``MobileAgentServer.dispatch_timeout = ...``) or per
    instance; the defaults favour liveness on the paper's slow links.
    """

    #: Seconds to wait for a transfer ack before declaring the next hop dead.
    dispatch_timeout: float = 10.0
    #: Extra attempts per destination after the first dispatch failure.
    dispatch_retries: int = 1
    #: Base backoff between dispatch attempts (exponential, jittered from a
    #: named stream — reproducible under a fixed master seed).
    dispatch_backoff: float = 0.5
    #: Unreachable-site handling: "skip" strikes the site from the tour,
    #: "retry" re-queues it once at the end (it may have healed), "fail"
    #: raises MigrationError (the pre-fault-tolerance behaviour).
    site_failure_policy: str = "skip"
    #: Checkpoint agents at every itinerary stop (home keeps the latest copy).
    checkpointing: bool = True
    #: Guardian (home-side supervisor) wake interval and give-up bounds —
    #: all bounded so the simulation always drains.
    guardian_interval: float = 15.0
    guardian_patience: int = 40
    max_redispatches: int = 3
    #: Admission control: inbound agent transfers decoded/landed at once.
    #: Beyond the bound the server refuses with an "overloaded" ack, which
    #: the sender's dispatch-retry machinery backs off and re-attempts —
    #: the MAS-tier twin of the gateway's 503 shed.  0 disables the bound.
    transfer_intake_limit: int = 16
    #: Streaming sessions: when True, :meth:`report_hop_result` posts each
    #: hop's site result to the agent's home gateway so a device poll can
    #: stream partials.  Installed per deployment (off by default — a
    #: store-and-forward deployment generates no extra traffic).
    hop_reports_enabled: bool = False

    def __init__(
        self,
        network: "Network",
        address: str,
        registry: AgentClassRegistry,
        wire_format: Optional["WireFormat"] = None,
        port: int = MAS_PORT,
    ) -> None:
        from .adapters import AgletsWireFormat  # default flavour

        self.network = network
        self.node = network.node(address)
        self.registry = registry
        self.port = port
        self.wire_format = wire_format or AgletsWireFormat()
        self._agents: dict[str, MobileAgent] = {}
        self._services: dict[str, ServiceAgent] = {}
        self._mailboxes: dict[str, Mailbox] = {}
        self._results: dict[str, Any] = {}
        self._completion_events: dict[str, Event] = {}
        self._locations: dict[str, str] = {}  # home-side tracking
        self._running: set[str] = set()
        self._behaviour_procs: dict[str, Process] = {}
        self._deactivated: dict[str, bytes] = {}  # agent_id -> stored form
        # Fault tolerance: home-side checkpoint store (modelled as durable —
        # it survives crash()), per-agent progress counters the guardian
        # watches, and the set of agents mid-dispatch *from* this server.
        self._checkpoints: dict[str, tuple[bytes, str, float]] = {}
        self._progress: dict[str, int] = {}
        self._migrating: set[str] = set()
        self._inflight_transfers = 0
        self.agent_logs: dict[str, list[tuple[float, str, str]]] = {}
        self._id_counter = itertools.count(1)
        self.node.listen(port, self._accept)
        self.node.metadata["mas_server"] = self
        # Background consumer of arrival-notification datagrams (home-side
        # location tracking).  The pump blocks on an empty mailbox, which
        # does not keep the simulation alive.
        self.sim.process(self._datagram_pump(), name=f"mas-dgram:{self.address}")

    # ------------------------------------------------------------------ basics
    @property
    def address(self) -> str:
        return self.node.address

    @property
    def sim(self):
        return self.network.sim

    def new_agent_id(self) -> str:
        return f"{self.address}/agent-{next(self._id_counter)}"

    def resident_agents(self) -> list[str]:
        return sorted(self._agents)

    def get_agent(self, agent_id: str) -> MobileAgent:
        try:
            return self._agents[agent_id]
        except KeyError:
            raise UnknownAgentError(f"{agent_id!r} not resident at {self.address}") from None

    def mailbox_of(self, agent_id: str) -> Mailbox:
        box = self._mailboxes.get(agent_id)
        if box is None:
            box = Mailbox(self.sim)
            self._mailboxes[agent_id] = box
        return box

    # ------------------------------------------------------------ service agents
    def register_service(self, service: ServiceAgent) -> None:
        """Install a stationary service agent on this host."""
        if service.name in self._services:
            raise ValueError(f"duplicate service {service.name!r} at {self.address}")
        service.bind(self)
        self._services[service.name] = service

    def service_names(self) -> list[str]:
        return sorted(self._services)

    def invoke_service(
        self, name: str, caller: MobileAgent, request: dict
    ) -> Generator:
        """Process: run a local service-agent request."""
        service = self._services.get(name)
        if service is None:
            raise UnknownAgentError(f"no service {name!r} at {self.address}")
        reply = yield from service._serve(caller.agent_id, request)
        return reply

    # ------------------------------------------------------------ agent lifecycle
    def create_agent(
        self,
        class_name: str | Type[MobileAgent],
        owner: str,
        itinerary: Optional[Itinerary] = None,
        state: Optional[dict[str, Any]] = None,
        agent_id: Optional[str] = None,
        autostart: bool = True,
        guardian: bool = False,
        trace: Optional["SpanContext"] = None,
    ) -> MobileAgent:
        """Instantiate an agent at this server (its home) and start it.

        With ``guardian=True`` a home-side supervisor process watches the
        agent's checkpoint progress and re-dispatches it from the latest
        checkpoint if it is lost to a site crash mid-tour.  ``trace`` links
        the agent's whole tour into the dispatching task's trace.
        """
        cls = (
            self.registry.get(class_name)
            if isinstance(class_name, str)
            else class_name
        )
        if not issubclass(cls, MobileAgent):
            raise TypeError(f"{cls!r} is not a MobileAgent subclass")
        agent = cls(
            agent_id=agent_id or self.new_agent_id(),
            owner=owner,
            home=self.address,
            itinerary=itinerary or Itinerary(origin=self.address),
            state=state,
        )
        agent.trace_ctx = trace
        self._land(agent, autostart=autostart)
        if guardian and not agent.itinerary.exhausted:
            self.sim.process(
                self._guardian(agent.agent_id), name=f"mas-guardian:{agent.agent_id}"
            )
        self.network.tracer.count("agents_created")
        return agent

    def clone_agent(self, agent_id: str) -> MobileAgent:
        """Create a copy with fresh identity and the remaining itinerary.

        Cloning a *running* agent is allowed (as in Aglets): the clone
        starts from a snapshot of the source's current state and covers the
        itinerary stops the source has not yet visited.
        """
        source = self.get_agent(agent_id)
        if source.lifecycle.terminal:
            raise AgentLifecycleError(f"{agent_id!r} is {source.lifecycle.value}")
        clone = type(source)(
            agent_id=self.new_agent_id(),
            owner=source.owner,
            home=source.home,
            itinerary=Itinerary(
                origin=source.itinerary.origin,
                stops=source.itinerary.remaining(),
            ),
            state=_deep_copy_state(source.state),
        )
        clone.trace_ctx = source.trace_ctx
        self._land(clone, autostart=True)
        self.network.tracer.count("agents_cloned")
        return clone

    def dispose_agent(self, agent_id: str) -> None:
        """Remove a resident agent permanently."""
        agent = self.get_agent(agent_id)
        if agent.lifecycle is AgentState.ACTIVE:
            raise AgentBusyError(f"{agent_id!r} is executing; cannot dispose")
        self._remove(agent, AgentState.DISPOSED)
        self.network.tracer.count("agents_disposed")

    def agent_status(self, agent_id: str) -> str:
        """Lifecycle of a resident, deactivated, or home-tracked agent."""
        agent = self._agents.get(agent_id)
        if agent is not None:
            return agent.lifecycle.value
        if agent_id in self._deactivated:
            return AgentState.DEACTIVATED.value
        if agent_id in self._locations:
            return f"remote@{self._locations[agent_id]}"
        if agent_id in self._results:
            return AgentState.COMPLETED.value
        raise UnknownAgentError(f"{agent_id!r} unknown at {self.address}")

    # -- deactivation (Aglets-style persistence) ------------------------------
    def deactivate_agent(self, agent_id: str) -> int:
        """Serialise an idle agent to server storage and evict it from memory.

        Long-lived agents waiting for rare events need not occupy the
        runtime (Aglets' ``deactivate``).  Returns the stored byte count.
        The agent keeps its identity; :meth:`activate_agent` restores it.
        """
        agent = self.get_agent(agent_id)
        if agent.lifecycle is AgentState.ACTIVE or agent_id in self._running:
            raise AgentBusyError(f"{agent_id!r} is executing; cannot deactivate")
        if agent.lifecycle.terminal:
            raise AgentLifecycleError(f"{agent_id!r} is {agent.lifecycle.value}")
        data = self.wire_format.encode(agent)
        self._deactivated[agent_id] = data
        self._agents.pop(agent_id, None)
        agent.lifecycle = AgentState.DEACTIVATED
        self.network.tracer.count("agents_deactivated")
        return len(data)

    def activate_agent(self, agent_id: str) -> MobileAgent:
        """Restore a deactivated agent to resident (idle) state."""
        data = self._deactivated.pop(agent_id, None)
        if data is None:
            raise UnknownAgentError(f"{agent_id!r} is not deactivated here")
        snapshot = self.wire_format.decode(data)
        cls = self.registry.get(snapshot.class_name)
        agent = cls(
            agent_id=snapshot.agent_id,
            owner=snapshot.owner,
            home=snapshot.home,
            itinerary=snapshot.itinerary,
            state=snapshot.state,
        )
        agent.hops = snapshot.hops
        agent.trace_ctx = snapshot.trace
        self._agents[agent.agent_id] = agent
        agent._location_is_home = agent.home == self.address
        agent.lifecycle = AgentState.IDLE
        self.network.tracer.count("agents_activated")
        return agent

    # -- completion -----------------------------------------------------------
    def completion_event(self, agent_id: str) -> Event:
        """Event fired with the agent's result when it completes."""
        event = self._completion_events.get(agent_id)
        if event is None:
            event = Event(self.sim)
            self._completion_events[agent_id] = event
            if agent_id in self._results:
                event.succeed(self._results[agent_id])
        return event

    def result_of(self, agent_id: str) -> Any:
        try:
            return self._results[agent_id]
        except KeyError:
            raise UnknownAgentError(f"no result for {agent_id!r}") from None

    def _record_completion(self, agent: MobileAgent, result: Any) -> None:
        agent.lifecycle = AgentState.COMPLETED
        self._results[agent.agent_id] = result
        event = self._completion_events.get(agent.agent_id)
        if event is not None and not event.triggered:
            event.succeed(result)
        self.network.tracer.count("agents_completed")
        self.network.telemetry.instant(
            "agent.complete",
            node=self.address,
            trace=agent.trace_ctx,
            attrs={"agent": agent.agent_id, "hops": agent.hops},
        )
        if agent.home != self.address:
            # Report completion to the home server so waiters there wake up.
            self.sim.process(
                self._send_control(
                    agent.home,
                    {
                        "type": "completion",
                        "agent_id": agent.agent_id,
                        "result": result,
                    },
                    size=256,
                ),
                name=f"mas-completion:{agent.agent_id}",
            )

    # ------------------------------------------------------------ landing/running
    def _land(self, agent: MobileAgent, autostart: bool = True) -> None:
        """Make ``agent`` resident here and (optionally) run its behaviour.

        Landing is the checkpoint boundary: the agent's state *before* this
        stop's work is snapshotted and carried to its home server — locally
        when landing at home, piggybacked on the arrival-notification
        datagram otherwise — so a guardian can re-dispatch from the last
        completed stop if this site dies under the agent.
        """
        self._agents[agent.agent_id] = agent
        agent._location_is_home = agent.home == self.address
        if agent.home == self.address:
            self._locations[agent.agent_id] = self.address
            if self.checkpointing:
                # A home-side checkpoint never crosses a link — store the
                # wire format's cheap local snapshot form when it has one.
                snapshot = getattr(self.wire_format, "snapshot", None)
                data = (
                    snapshot(agent)
                    if snapshot is not None
                    else self.wire_format.encode(agent)
                )
                self._store_checkpoint(agent.agent_id, data, self.address)
        else:
            # Tell home where we are (cheap fire-and-forget probe), carrying
            # the checkpoint when checkpointing is on.
            payload: dict[str, Any] = {
                "type": "notify_arrival",
                "agent_id": agent.agent_id,
                "location": self.address,
            }
            size = 96
            if self.checkpointing:
                checkpoint = self.wire_format.encode(agent)
                payload["checkpoint"] = checkpoint
                size += len(checkpoint)
            self.network.send_datagram(
                self.address, agent.home, payload=payload, size=size
            )
        if autostart:
            proc = self.sim.process(
                self._run_behaviour(agent), name=f"agent:{agent.agent_id}"
            )
            self._behaviour_procs[agent.agent_id] = proc

    def _store_checkpoint(self, agent_id: str, data: bytes, location: str) -> None:
        """Home-side: remember the agent's latest wire form and whereabouts."""
        self._checkpoints[agent_id] = (data, location, self.sim.now)
        self._progress[agent_id] = self._progress.get(agent_id, 0) + 1
        self.network.tracer.count("agent_checkpoints")

    def _run_behaviour(self, agent: MobileAgent) -> Generator:
        agent.lifecycle = AgentState.ACTIVE
        self._running.add(agent.agent_id)
        ctx = AgentContext(self, agent)
        # One span per behaviour execution = one span per itinerary hop,
        # parented on whatever brought the agent here (the gateway dispatch,
        # or the transfer span from the previous site).  The agent's carried
        # context is re-pointed at this span so the *next* hop chains on it.
        span = self.network.telemetry.start_span(
            "agent.run",
            node=self.address,
            parent=agent.trace_ctx,
            attrs={"agent": agent.agent_id, "hops": agent.hops},
        )
        agent.trace_ctx = span.context
        try:
            yield from agent.on_arrival(ctx)
        except MigrationSignal as signal:
            self._running.discard(agent.agent_id)
            # Close before the transfer so hop-work and transfer time stay
            # separate phases on the timeline.
            span.end(outcome="migrate", to=signal.destination)
            try:
                yield from self._transfer(agent, signal.destination)
            except InterruptException:
                # Killed mid-migration (host crash): the in-flight copy is
                # gone; recovery, if any, is the home guardian's job.
                self.network.tracer.count("agents_killed_in_flight")
            return
        except CompleteSignal as signal:
            span.end(outcome="complete")
            self._record_completion(agent, signal.result)
            return
        except DisposeSignal:
            span.end(outcome="dispose")
            self._remove(agent, AgentState.DISPOSED)
            self.network.tracer.count("agents_disposed")
            return
        except InterruptException as exc:
            if exc.cause == "node-crash":
                # Host died under the agent: crash() has already disposed of
                # it; there is nothing to park.
                span.end(status="killed", outcome="node-crash")
                return
            # Management preemption (retract/dispose request): abort the
            # current execution; the agent stays resident and idle so the
            # pending management operation can take it.
            agent.lifecycle = AgentState.IDLE
            self.network.tracer.count("agents_preempted")
            span.end(status="preempted", outcome="preempted")
            return
        finally:
            self._running.discard(agent.agent_id)
            self._behaviour_procs.pop(agent.agent_id, None)
            if span.open:  # behaviour raised, or returned without a signal
                span.end(outcome="idle")
        # Behaviour returned without a control signal: agent stays resident.
        agent.lifecycle = AgentState.IDLE

    def _remove(self, agent: MobileAgent, final_state: AgentState) -> None:
        self._agents.pop(agent.agent_id, None)
        self._mailboxes.pop(agent.agent_id, None)
        agent.lifecycle = final_state

    # ------------------------------------------------------------ migration (ATP)
    def _transfer(self, agent: MobileAgent, destination: str) -> Generator:
        """Process: serialise and move ``agent`` to ``destination``.

        Migration is the fault-critical step of a tour: the next hop may
        have crashed or been cut off since the itinerary was written.  Each
        destination gets ``1 + dispatch_retries`` attempts, each bounded by
        ``dispatch_timeout``; a destination that stays dead is then handled
        per :attr:`site_failure_policy`.
        """
        agent.lifecycle = AgentState.MIGRATING
        self._agents.pop(agent.agent_id, None)
        if destination == self.address:
            # Degenerate move-to-self: re-land immediately.
            agent.lifecycle = AgentState.CREATED
            self._land(agent)
            return
        # The transfer span covers serialisation, the ATP exchange, and any
        # retries/failover; the agent carries its context across the wire so
        # the landing server's next hop span parents under it.
        span = self.network.telemetry.start_span(
            "agent.transfer",
            node=self.address,
            parent=agent.trace_ctx,
            attrs={"agent": agent.agent_id, "to": destination},
        )
        agent.trace_ctx = span.context
        self._migrating.add(agent.agent_id)
        try:
            yield from self._transfer_with_recovery(agent, destination)
            span.end()
        finally:
            self._migrating.discard(agent.agent_id)
            if span.open:
                span.end(status="error")

    def _transfer_with_recovery(self, agent: MobileAgent, destination: str) -> Generator:
        stream = self.network.streams.get(f"mas-dispatch:{self.address}")
        dest = destination
        while True:
            last_exc: Optional[Exception] = None
            for attempt in range(1 + max(0, self.dispatch_retries)):
                if attempt:
                    delay = self.dispatch_backoff * (2 ** (attempt - 1))
                    delay *= 1.0 + 0.1 * stream.uniform(-1.0, 1.0)
                    yield self.sim.timeout(delay)
                try:
                    yield from self._attempt_transfer(agent, dest)
                    return
                except (TransportError, NoRouteError, MigrationError) as exc:
                    last_exc = exc
                    self.network.tracer.count("migration_failures")
            if self.site_failure_policy == "fail":
                raise MigrationError(
                    f"transfer of {agent.agent_id} to {dest} failed: {last_exc}"
                ) from last_exc
            next_dest = self._strike_site(agent, dest)
            if next_dest is None:
                return
            dest = next_dest

    def _attempt_transfer(self, agent: MobileAgent, destination: str) -> Generator:
        """One dispatch attempt, bounded by :attr:`dispatch_timeout`."""
        data = self.wire_format.encode(agent)
        wire_size = len(data) + self.wire_format.per_hop_overhead
        yield self.node.compute(self.wire_format.encode_cost_s)
        exchange = self.sim.process(
            self._transfer_exchange(agent.agent_id, destination, data, wire_size),
            name=f"atp-dispatch:{agent.agent_id}",
        )
        yield self.sim.any_of([exchange, self.sim.timeout(self.dispatch_timeout)])
        if exchange.is_alive:
            # No ack within the dispatch window: treat the next hop as dead.
            try:
                exchange.interrupt("dispatch-timeout")
            except RuntimeError:  # settled in this very tick
                pass
            raise MigrationError(
                f"dispatch of {agent.agent_id} to {destination} timed out "
                f"after {self.dispatch_timeout:g}s"
            )
        ack = exchange.value
        if not (isinstance(ack, dict) and ack.get("status") == "ok"):
            raise MigrationError(
                f"{destination} refused agent {agent.agent_id}: {ack!r}"
            )
        self.network.tracer.count("agent_hops")

    def _transfer_exchange(
        self, agent_id: str, destination: str, data: bytes, wire_size: int
    ) -> Generator:
        """Process: the raw ATP exchange; returns the peer's ack payload.

        An interrupt (dispatch timeout) makes it return quietly — the
        caller has already decided the attempt failed.
        """
        try:
            sock = yield from connect(
                self.network,
                self.address,
                destination,
                self.port,
                purpose=f"atp-transfer:{agent_id}",
            )
        except InterruptException:
            return {"status": "timeout"}
        try:
            yield from sock.send({"type": "transfer", "data": data}, wire_size)
            ack = yield from sock.recv()
        except ConnectionClosed as exc:
            raise MigrationError(f"transfer to {destination} aborted: {exc}") from exc
        except InterruptException:
            return {"status": "timeout"}
        finally:
            sock.close()
        return ack.payload

    def _strike_site(self, agent: MobileAgent, failed: str) -> Optional[str]:
        """Unreachable-site bookkeeping; returns the next destination.

        Records the failure in the agent's state, optionally re-queues the
        site at the end of the tour ("retry" policy, once per site), and
        falls forward along the itinerary.  Returns ``None`` when there is
        nowhere left to go — the agent re-lands here, idle, so management
        operations (retract, guardian recovery) can still reach it.
        """
        agent.state.setdefault("failed_sites", []).append(failed)
        self.network.tracer.count("sites_skipped")
        if self.site_failure_policy == "retry" and failed != agent.itinerary.origin:
            requeued = agent.state.setdefault("requeued_sites", [])
            if failed not in requeued:
                requeued.append(failed)
                stop = next(
                    (
                        s
                        for s in reversed(agent.itinerary.visited())
                        if s.address == failed
                    ),
                    Stop(failed),
                )
                agent.itinerary.append(stop)
        while True:
            nxt = agent.itinerary.next_stop()
            if nxt is None:
                candidate = agent.itinerary.origin
                break
            agent.itinerary.advance()
            if nxt.address != failed:
                candidate = nxt.address
                break
            # Consecutive stops at the very site that just died: skip them.
        if candidate == self.address or candidate == failed:
            agent.lifecycle = AgentState.IDLE
            self._land(agent, autostart=False)
            self.network.tracer.count("agents_stranded")
            return None
        return candidate

    # ------------------------------------------------------------ guardian
    def _guardian(self, agent_id: str) -> Generator:
        """Process: home-side supervisor for one travelling agent.

        Wakes every :attr:`guardian_interval` seconds and compares the
        agent's checkpoint progress counter against the last wake.  No
        progress *and* an unreachable last-known location means the agent
        died with its host: the latest checkpoint is re-landed here and the
        tour resumes.  Both the number of wakes (:attr:`guardian_patience`)
        and the number of rescues (:attr:`max_redispatches`) are bounded,
        so the supervisor can never keep the simulation alive forever.
        """
        last_progress = -1
        redispatches = 0
        completion = self.completion_event(agent_id)
        for _ in range(self.guardian_patience):
            if completion.triggered:
                return
            yield self.sim.any_of(
                [completion, self.sim.timeout(self.guardian_interval)]
            )
            if completion.triggered:
                return
            if agent_id in self._deactivated:
                return  # persisted on purpose; not the guardian's business
            progress = self._progress.get(agent_id, 0)
            if progress != last_progress:
                last_progress = progress
                continue
            # No new checkpoint since the last wake.  A resident agent that
            # is merely slow (still ACTIVE or queued) is left alone, as is
            # one we are mid-dispatching ourselves.
            resident = self._agents.get(agent_id)
            if resident is not None:
                if (
                    resident.lifecycle is AgentState.ACTIVE
                    or agent_id in self._running
                ):
                    continue
                return  # parked here (idle/stranded/terminal): nothing to rescue
            if agent_id in self._migrating:
                continue
            entry = self._checkpoints.get(agent_id)
            if entry is None:
                continue  # nothing to restore from (checkpointing off?)
            _, location, _ = entry
            if location and location != self.address:
                alive = yield from self._site_alive(location)
                if alive:
                    continue  # slow site, live agent: do not duplicate it
            if redispatches >= self.max_redispatches:
                self.network.tracer.count("guardian_gave_up")
                return
            redispatches += 1
            self._redispatch_from_checkpoint(agent_id, failed_site=location)
        self.network.tracer.count("guardian_expired")

    def _site_alive(self, address: str) -> Generator:
        """Process: liveness probe — does ``address`` answer an ATP status?"""
        probe = self.sim.process(
            self._probe_site(address), name=f"mas-probe:{address}"
        )
        yield self.sim.any_of([probe, self.sim.timeout(self.dispatch_timeout)])
        if probe.is_alive:
            try:
                probe.interrupt("probe-timeout")
            except RuntimeError:
                pass
            return False
        return bool(probe.value)

    def _probe_site(self, address: str) -> Generator:
        """Process: one status round-trip; returns True iff the peer answered."""
        try:
            reply = yield from self._send_control(
                address, {"type": "status", "agent_id": ""}, size=64
            )
        except (TransportError, NoRouteError, InterruptException):
            return False
        return isinstance(reply, dict)

    def _redispatch_from_checkpoint(self, agent_id: str, failed_site: str) -> None:
        """Re-land the latest checkpoint of ``agent_id`` here and resume it.

        The checkpoint was taken at the moment the agent *landed* at the
        failed stop, i.e. with the cursor already past it — resuming from it
        naturally skips the dead site.  Under the "retry" policy the cursor
        is rewound one stop so the healed site is visited again.
        """
        data, _, _ = self._checkpoints[agent_id]
        snapshot = self.wire_format.decode(data)
        cls = self.registry.get(snapshot.class_name)
        itinerary = snapshot.itinerary
        if (
            self.site_failure_policy == "retry"
            and failed_site != self.address
            and itinerary.cursor > 0
        ):
            itinerary.rewind()
        state = snapshot.state
        state["redispatches"] = int(state.get("redispatches", 0)) + 1
        state.setdefault("failed_sites", []).append(failed_site)
        agent = cls(
            agent_id=snapshot.agent_id,
            owner=snapshot.owner,
            home=snapshot.home,
            itinerary=itinerary,
            state=state,
        )
        agent.hops = snapshot.hops
        agent.trace_ctx = snapshot.trace
        self._locations[agent_id] = self.address
        self.network.tracer.count("agents_redispatched")
        self._land(agent)

    # ------------------------------------------------------------ crash/restart
    def crash(self) -> None:
        """Simulate this site dying: kill resident agents, stop listening.

        Volatile state (resident agents, their mailboxes, running
        behaviours) is lost.  Durable state — results, home-side location
        tracking, checkpoints, completion events, deactivated agents —
        survives, mirroring a process that kept its database across a
        reboot.  Idempotent; :meth:`restart` undoes it.
        """
        if self.node.crashed:
            return
        for agent_id, proc in list(self._behaviour_procs.items()):
            if proc.is_alive and proc.target is not None:
                try:
                    proc.interrupt("node-crash")
                except RuntimeError:
                    pass
        for agent_id, agent in list(self._agents.items()):
            agent.lifecycle = AgentState.DISPOSED
            self.network.tracer.count("agents_killed")
        self._agents.clear()
        self._mailboxes.clear()
        self._running.clear()
        self._behaviour_procs.clear()
        self.node.suspend_listeners()
        self.network.tracer.count("mas_crashes")

    def restart(self) -> None:
        """Bring a crashed site back: listeners resume, durable state intact."""
        if not self.node.crashed:
            return
        self.node.resume_listeners()
        self.network.tracer.count("mas_restarts")

    def _accept(self, conn) -> None:
        self.sim.process(
            self._serve_peer(conn.responder_socket), name=f"atp-serve:{self.address}"
        )

    def _serve_peer(self, sock) -> Generator:
        try:
            message = yield from sock.recv()
        except ConnectionClosed:
            return
        payload = message.payload
        reply: dict[str, Any]
        reply_size = 64
        if not isinstance(payload, dict) or "type" not in payload:
            reply = {"status": "error", "reason": "malformed ATP message"}
        else:
            kind = payload["type"]
            try:
                if kind == "transfer":
                    if (
                        self.transfer_intake_limit > 0
                        and self._inflight_transfers >= self.transfer_intake_limit
                    ):
                        # Bounded intake: refuse rather than queue unboundedly;
                        # the sender backs off and retries the dispatch.
                        self.network.tracer.count("mas_transfers_refused")
                        reply = {
                            "status": "overloaded",
                            "reason": (
                                f"{self.address} at transfer intake limit "
                                f"({self.transfer_intake_limit})"
                            ),
                        }
                    else:
                        self._inflight_transfers += 1
                        try:
                            reply = yield from self._handle_transfer(payload)
                        finally:
                            self._inflight_transfers -= 1
                elif kind == "retract":
                    reply, reply_size = self._handle_retract(payload)
                elif kind == "status":
                    reply = self._handle_status(payload)
                elif kind == "message":
                    reply = yield from self._handle_message(payload)
                elif kind == "completion":
                    reply = self._handle_completion(payload)
                elif kind == "clone":
                    reply = self._handle_clone(payload)
                elif kind == "dispose":
                    reply = self._handle_dispose(payload)
                else:
                    reply = {"status": "error", "reason": f"unknown type {kind!r}"}
            except Exception as exc:  # protocol robustness: errors become replies
                reply = {"status": "error", "reason": f"{type(exc).__name__}: {exc}"}
        try:
            yield from sock.send(reply, reply_size)
        except ConnectionClosed:
            pass

    def _handle_transfer(self, payload: dict) -> Generator:
        data = payload.get("data")
        if not isinstance(data, (bytes, bytearray)):
            return {"status": "error", "reason": "transfer without agent data"}
        yield self.node.compute(self.wire_format.decode_cost_s)
        snapshot = self.wire_format.decode(bytes(data))
        cls = self.registry.get(snapshot.class_name)
        agent = cls(
            agent_id=snapshot.agent_id,
            owner=snapshot.owner,
            home=snapshot.home,
            itinerary=snapshot.itinerary,
            state=snapshot.state,
        )
        agent.hops = snapshot.hops + 1
        agent.trace_ctx = snapshot.trace
        self._land(agent)
        self.network.tracer.count("agents_received")
        return {"status": "ok"}

    def _handle_retract(self, payload: dict) -> tuple[dict, int]:
        agent_id = payload.get("agent_id", "")
        agent = self._agents.get(agent_id)
        if agent is None:
            location = self._locations.get(agent_id)
            if location and location != self.address:
                return {"status": "redirect", "location": location}, 96
            return {"status": "unknown"}, 64
        if agent.lifecycle is AgentState.ACTIVE or agent_id in self._running:
            # Preempt the running behaviour (Aglets aborts the current
            # execution on retraction); the requester retries shortly and
            # finds the agent idle.
            self._preempt(agent_id)
            return {"status": "busy"}, 64
        data = self.wire_format.encode(agent)
        self._remove(agent, AgentState.RETRACTED)
        self.network.tracer.count("agents_retracted")
        return (
            {"status": "ok", "data": data},
            len(data) + self.wire_format.per_hop_overhead,
        )

    def _handle_status(self, payload: dict) -> dict:
        agent_id = payload.get("agent_id", "")
        try:
            return {"status": "ok", "state": self.agent_status(agent_id)}
        except UnknownAgentError:
            return {"status": "unknown"}

    def _handle_message(self, payload: dict) -> Generator:
        """Process: deliver or forward an inbound agent message.

        A message for a non-resident agent is forwarded to its last known
        location (home servers track their travellers), bounded by a hop
        counter so routing loops cannot arise from stale tables.
        """
        msg = payload.get("message")
        if not isinstance(msg, AgentMessage):
            return {"status": "error", "reason": "no AgentMessage"}
        if msg.recipient in self._deactivated:
            # Activation-on-message: wake the stored agent to receive.
            self.activate_agent(msg.recipient)
        if msg.recipient in self._agents:
            self._deliver_local(msg)
            return {"status": "ok"}
        hops = int(payload.get("fwd", 0))
        location = self._locations.get(msg.recipient)
        if location and location != self.address and hops < 4:
            reply = yield from self._send_control(
                location,
                {"type": "message", "message": msg, "fwd": hops + 1},
                size=msg.wire_size(),
            )
            return reply if isinstance(reply, dict) else {"status": "unknown"}
        return {"status": "unknown"}

    def _handle_completion(self, payload: dict) -> dict:
        agent_id = payload.get("agent_id", "")
        self._results[agent_id] = payload.get("result")
        event = self._completion_events.get(agent_id)
        if event is not None and not event.triggered:
            event.succeed(payload.get("result"))
        return {"status": "ok"}

    def _handle_clone(self, payload: dict) -> dict:
        agent_id = payload.get("agent_id", "")
        if agent_id not in self._agents:
            location = self._locations.get(agent_id)
            if location and location != self.address:
                return {"status": "redirect", "location": location}
            return {"status": "unknown"}
        try:
            clone = self.clone_agent(agent_id)
            return {"status": "ok", "clone_id": clone.agent_id}
        except (AgentBusyError, AgentLifecycleError) as exc:
            return {"status": "busy", "reason": str(exc)}

    def _handle_dispose(self, payload: dict) -> dict:
        agent_id = payload.get("agent_id", "")
        try:
            self.dispose_agent(agent_id)
            return {"status": "ok"}
        except UnknownAgentError:
            return {"status": "unknown"}
        except AgentBusyError:
            return {"status": "busy"}

    def _preempt(self, agent_id: str) -> None:
        """Interrupt a running behaviour (management preemption)."""
        proc = self._behaviour_procs.get(agent_id)
        if proc is not None and proc.is_alive and proc.target is not None:
            try:
                proc.interrupt("management-preempt")
            except RuntimeError:  # terminated in this very tick
                pass

    # ------------------------------------------------------------ hop reports
    def report_hop_result(self, agent: MobileAgent, value: Any) -> None:
        """Streaming sessions: report this hop's site result home.

        Fire-and-forget — the tour never waits on (or fails with) the
        report; the final result document is authoritative either way.
        No-op unless the deployment enabled :attr:`hop_reports_enabled`,
        so store-and-forward runs are byte-identical to before.
        """
        if not self.hop_reports_enabled:
            return
        from ..xmlcodec import Element, write_bytes
        from .serializer import value_to_xml

        doc = Element(
            "hopreport", {"agent": agent.agent_id, "site": self.address}
        )
        doc.text = write_bytes(value_to_xml(value)).decode("utf-8")
        self.sim.process(
            self._post_hop_report(
                agent.home, write_bytes(doc), agent.trace_ctx
            ),
            name=f"mas-hopreport:{agent.agent_id}",
        )

    def _post_hop_report(self, home: str, body: bytes, trace) -> Generator:
        """Process: one ``POST /session/partial`` to the home gateway."""
        from ..core.gateway import GATEWAY_PORT
        from ..simnet.http import request as http_request

        headers = trace.to_headers() if trace is not None else None
        try:
            yield from http_request(
                self.network,
                self.address,
                home,
                "POST",
                "/session/partial",
                body=body,
                body_size=len(body),
                port=GATEWAY_PORT,
                purpose="hop-report",
                raise_for_status=False,
                headers=headers,
            )
        except (TransportError, NoRouteError, ConnectionClosed):
            # Lost report (crashed gateway, cut link): the stream simply
            # misses this hop until the final document arrives.
            self.network.tracer.count("hop_reports_lost")

    def hop_progress_of(self, agent_id: str) -> Optional[tuple[int, int]]:
        """``(visited, remaining)`` itinerary counts for an agent, or None.

        Answers from the resident agent when it is here, else from the
        latest home-side checkpoint (homes track their travellers).  Used
        by the gateway to annotate "result not ready" answers so devices
        can poll adaptively.
        """
        agent = self._agents.get(agent_id)
        itinerary = agent.itinerary if agent is not None else None
        if itinerary is None:
            entry = self._checkpoints.get(agent_id)
            if entry is None:
                return None
            try:
                itinerary = self.wire_format.decode(entry[0]).itinerary
            except MigrationError:
                return None
        return itinerary.cursor, len(itinerary.remaining())

    # ------------------------------------------------------------ remote control
    def _send_control(self, destination: str, payload: dict, size: int) -> Generator:
        """Process: one ATP request/response exchange; returns the reply."""
        sock = yield from connect(
            self.network,
            self.address,
            destination,
            self.port,
            purpose=f"atp-{payload.get('type', '?')}",
        )
        try:
            yield from sock.send(payload, size)
            reply = yield from sock.recv()
        finally:
            sock.close()
        return reply.payload

    def retract_agent(self, agent_id: str) -> Generator:
        """Process: pull an agent back here; returns the live agent.

        Follows home tracking and ``redirect`` replies; waits out ``busy``
        answers with bounded retries (the agent may be mid-hop or mid-task).
        """
        for _ in range(_RETRACT_MAX_TRIES):
            agent = self._agents.get(agent_id)
            if agent is not None:
                if agent.lifecycle is AgentState.ACTIVE:
                    yield self.sim.timeout(_RETRACT_RETRY_DELAY)
                    continue
                return agent  # already here
            target = self._locations.get(agent_id)
            if target is None or target == self.address:
                yield self.sim.timeout(_RETRACT_RETRY_DELAY)
                continue
            reply = yield from self._send_control(
                target, {"type": "retract", "agent_id": agent_id}, size=96
            )
            status = reply.get("status") if isinstance(reply, dict) else None
            if status == "ok":
                snapshot = self.wire_format.decode(bytes(reply["data"]))
                cls = self.registry.get(snapshot.class_name)
                agent = cls(
                    agent_id=snapshot.agent_id,
                    owner=snapshot.owner,
                    home=snapshot.home,
                    itinerary=snapshot.itinerary,
                    state=snapshot.state,
                )
                agent.hops = snapshot.hops + 1
                agent.trace_ctx = snapshot.trace
                agent.lifecycle = AgentState.RETRACTED
                self._agents[agent.agent_id] = agent
                self._locations[agent_id] = self.address
                return agent
            if status == "redirect":
                self._locations[agent_id] = reply.get("location", target)
                continue
            if status in ("busy", "unknown"):
                # "unknown" is usually a mid-hop race: the agent left that
                # server before our request landed.  Wait for the next
                # arrival notification to refresh the location, then retry.
                yield self.sim.timeout(_RETRACT_RETRY_DELAY)
                continue
            raise UnknownAgentError(
                f"retract of {agent_id!r} failed at {target}: {reply!r}"
            )
        raise AgentBusyError(f"could not retract {agent_id!r}: kept busy/moving")

    def clone_anywhere(self, agent_id: str) -> Generator:
        """Process: clone an agent wherever it currently is.

        Resident agents clone locally; travelling agents are cloned at
        their last reported location (following redirects, waiting out
        mid-hop windows).  Returns the clone's agent id.
        """
        for _ in range(_RETRACT_MAX_TRIES):
            if agent_id in self._agents:
                return self.clone_agent(agent_id).agent_id
            target = self._locations.get(agent_id)
            if target is None or target == self.address:
                yield self.sim.timeout(_RETRACT_RETRY_DELAY)
                continue
            reply = yield from self._send_control(
                target, {"type": "clone", "agent_id": agent_id}, size=96
            )
            status = reply.get("status") if isinstance(reply, dict) else None
            if status == "ok":
                return reply["clone_id"]
            if status == "redirect":
                self._locations[agent_id] = reply.get("location", target)
                continue
            if status in ("busy", "unknown"):
                # mid-hop or mid-migration; wait for the next arrival report
                yield self.sim.timeout(_RETRACT_RETRY_DELAY)
                continue
            raise UnknownAgentError(
                f"clone of {agent_id!r} failed at {target}: {reply!r}"
            )
        raise AgentBusyError(f"could not clone {agent_id!r}: kept moving")

    def _datagram_pump(self) -> Generator:
        """Consume arrival notifications for home-side location tracking."""
        while True:
            dgram = yield self.node.datagrams.get()
            payload = getattr(dgram, "payload", None)
            if not isinstance(payload, dict):
                continue
            if payload.get("type") != "notify_arrival":
                continue
            agent_id = payload.get("agent_id", "")
            # A resident agent's location is authoritative; otherwise adopt
            # the freshest report.
            if agent_id not in self._agents:
                self._locations[agent_id] = payload.get("location", "")
            checkpoint = payload.get("checkpoint")
            if isinstance(checkpoint, (bytes, bytearray)):
                self._store_checkpoint(
                    agent_id, bytes(checkpoint), payload.get("location", "")
                )

    def query_status(self, agent_id: str, home: Optional[str] = None) -> Generator:
        """Process: lifecycle state of ``agent_id`` asking ``home`` if remote."""
        try:
            return self.agent_status(agent_id)
        except UnknownAgentError:
            if home is None or home == self.address:
                raise
        reply = yield from self._send_control(
            home, {"type": "status", "agent_id": agent_id}, size=96
        )
        if isinstance(reply, dict) and reply.get("status") == "ok":
            return reply["state"]
        raise UnknownAgentError(f"{agent_id!r} unknown at {home}")

    # ------------------------------------------------------------ messaging
    def _deliver_local(self, msg: AgentMessage) -> None:
        self.mailbox_of(msg.recipient).put(msg)
        agent = self._agents.get(msg.recipient)
        if agent is not None and agent.lifecycle is AgentState.IDLE:
            self.sim.process(
                self._run_message_hook(agent), name=f"agent-msg:{agent.agent_id}"
            )

    def _run_message_hook(self, agent: MobileAgent) -> Generator:
        box = self.mailbox_of(agent.agent_id)
        if not len(box):
            return
        msg = yield box.receive()
        ctx = AgentContext(self, agent)
        agent.lifecycle = AgentState.ACTIVE
        try:
            yield from agent.on_message(ctx, msg)
        except MigrationSignal as signal:
            yield from self._transfer(agent, signal.destination)
            return
        except CompleteSignal as signal:
            self._record_completion(agent, signal.result)
            return
        except DisposeSignal:
            self._remove(agent, AgentState.DISPOSED)
            return
        agent.lifecycle = AgentState.IDLE

    def send_agent_message(
        self, sender_id: str, recipient_id: str, subject: str, body: dict
    ) -> Generator:
        """Process: route a message to a (possibly remote) agent."""
        msg = AgentMessage(
            sender=sender_id,
            recipient=recipient_id,
            subject=subject,
            body=body,
            sent_at=self.sim.now,
        )
        if recipient_id in self._deactivated:
            self.activate_agent(recipient_id)
        if recipient_id in self._agents:
            self._deliver_local(msg)
            return True
        target = self._locations.get(recipient_id)
        if target is None:
            # Agent ids embed their home server ("<home>/agent-N"); route
            # unknown recipients via their home, which tracks them.
            home = recipient_id.partition("/")[0]
            if home and home != self.address and self.network.has_node(home):
                target = home
            else:
                raise UnknownAgentError(
                    f"cannot route message: {recipient_id!r} unknown at {self.address}"
                )
        reply = yield from self._send_control(
            target, {"type": "message", "message": msg}, size=msg.wire_size()
        )
        return isinstance(reply, dict) and reply.get("status") == "ok"


def _deep_copy_state(state: dict) -> dict:
    """Copy nested plain data (the only thing agent state may contain)."""

    def copy(value):
        if isinstance(value, dict):
            return {k: copy(v) for k, v in value.items()}
        if isinstance(value, list):
            return [copy(v) for v in value]
        if isinstance(value, tuple):
            return [copy(v) for v in value]
        return value

    return {k: copy(v) for k, v in state.items()}
