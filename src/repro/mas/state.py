"""Agent lifecycle states and control-flow signals.

Control-flow signals are exceptions an agent raises *through* its behaviour
generator to hand control back to the hosting server — the same structure as
Aglets, where ``dispatch()``/``dispose()`` abort the current execution and
the server performs the requested transition.
"""

from __future__ import annotations

import enum
from typing import Any

__all__ = [
    "AgentState",
    "MigrationSignal",
    "DisposeSignal",
    "CompleteSignal",
]


class AgentState(enum.Enum):
    """Lifecycle of a mobile agent.

    ``CREATED`` → ``ACTIVE`` (behaviour running) → ``IDLE`` (resident,
    message-driven) / ``MIGRATING`` (in transit) / ``COMPLETED`` (result
    recorded, awaiting collection) → ``RETRACTED`` / ``DISPOSED``.
    """

    CREATED = "created"
    ACTIVE = "active"
    IDLE = "idle"
    MIGRATING = "migrating"
    DEACTIVATED = "deactivated"  # serialised to server storage, not in memory
    COMPLETED = "completed"
    RETRACTED = "retracted"
    DISPOSED = "disposed"

    @property
    def terminal(self) -> bool:
        return self in (AgentState.RETRACTED, AgentState.DISPOSED)


class MigrationSignal(Exception):
    """Agent requested a move; the server serialises and transfers it."""

    def __init__(self, destination: str) -> None:
        super().__init__(destination)
        self.destination = destination


class DisposeSignal(Exception):
    """Agent requested its own disposal."""


class CompleteSignal(Exception):
    """Agent finished its task; ``result`` is recorded at the current server."""

    def __init__(self, result: Any) -> None:
        super().__init__("completed")
        self.result = result
