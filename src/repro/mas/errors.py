"""Mobile agent system exceptions."""

from __future__ import annotations

__all__ = [
    "AgentError",
    "UnknownAgentError",
    "UnknownClassError",
    "AgentBusyError",
    "MigrationError",
    "AgentLifecycleError",
]


class AgentError(Exception):
    """Base class for MAS failures."""


class UnknownAgentError(AgentError):
    """No agent with the given id at this server."""


class UnknownClassError(AgentError):
    """Agent class name not present in the class registry."""


class AgentBusyError(AgentError):
    """Operation (e.g. retract) attempted while the agent is executing."""


class MigrationError(AgentError):
    """Agent transfer failed (unreachable server, refused, corrupt wire form)."""


class AgentLifecycleError(AgentError):
    """Operation invalid in the agent's current lifecycle state."""
